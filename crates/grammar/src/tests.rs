use crate::*;
use record_netlist::Netlist;
use record_rtl::OpKind;

fn pipeline(src: &str) -> (Netlist, record_isex::Extraction) {
    let model = record_hdl::parse(src).expect("parses");
    let n = record_netlist::elaborate(&model).expect("elaborates");
    let ex = record_isex::extract(&n, &Default::default()).expect("extracts");
    (n, ex)
}

const ACC_MACHINE: &str = r#"
    module Alu {
        in a: bit(8);
        in b: bit(8);
        ctrl f: bit(2);
        out y: bit(8);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a - b;
                2 => y = a & b;
                3 => y = a;
            }
        }
    }
    module Acc {
        in d: bit(8);
        ctrl en: bit(1);
        out q: bit(8);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(4);
        in din: bit(8);
        ctrl w: bit(1);
        out dout: bit(8);
        memory cells[16]: bit(8);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor AccMachine {
        instruction word: bit(8);
        out pout: bit(8);
        parts { alu: Alu; acc: Acc; ram: Ram; }
        connections {
            alu.a = acc.q;
            alu.b = ram.dout;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[7];
            ram.addr = I[5:2];
            ram.din = acc.q;
            ram.w = I[6];
            pout = acc.q;
        }
    }
"#;

#[test]
fn grammar_shape_for_acc_machine() {
    let (n, ex) = pipeline(ACC_MACHINE);
    let g = TreeGrammar::from_base(&ex.base, &n);
    // Non-terminals: START, acc, pout (ram is a memory, not a location).
    assert_eq!(g.nonterm_count(), 3);
    // Rules: 2 start (acc, pout) + 6 RT + 1 stop (acc).
    assert_eq!(g.rules().len(), 9);
    assert!(g.check().is_empty(), "{:?}", g.check());
}

#[test]
fn start_rules_cost_zero_rt_rules_cost_one() {
    let (n, ex) = pipeline(ACC_MACHINE);
    let g = TreeGrammar::from_base(&ex.base, &n);
    for r in g.rules() {
        match r.origin {
            RuleOrigin::Start | RuleOrigin::Stop(_) => assert_eq!(r.cost, 0),
            RuleOrigin::Template(_) => assert_eq!(r.cost, 1),
        }
    }
}

#[test]
fn store_templates_become_start_store_rules() {
    let (n, ex) = pipeline(ACC_MACHINE);
    let g = TreeGrammar::from_base(&ex.base, &n);
    let store_rules: Vec<_> = g
        .rules()
        .iter()
        .filter(|r| matches!(&r.rhs, GPat::T(TermKey::Store(_), _)))
        .collect();
    assert_eq!(store_rules.len(), 1);
    assert_eq!(store_rules[0].lhs, NonTermId::START);
    assert_eq!(store_rules[0].cost, 1);
    // Its children are [addr (imm), value (NT acc)].
    let GPat::T(_, kids) = &store_rules[0].rhs else {
        unreachable!()
    };
    assert!(matches!(kids[0], GPat::T(TermKey::Imm { .. }, _)));
    assert!(matches!(kids[1], GPat::NT(_)));
}

#[test]
fn register_operands_become_nonterminals() {
    let (n, ex) = pipeline(ACC_MACHINE);
    let g = TreeGrammar::from_base(&ex.base, &n);
    // The add rule: acc -> add(acc, ram_read(imm)).
    let add_rule = g
        .rules()
        .iter()
        .find(|r| matches!(&r.rhs, GPat::T(TermKey::Op(OpKind::Add), _)))
        .expect("add rule exists");
    let GPat::T(_, kids) = &add_rule.rhs else {
        unreachable!()
    };
    assert!(matches!(kids[0], GPat::NT(_)), "register operand is an NT");
    assert!(matches!(kids[1], GPat::T(TermKey::MemRead(_), _)));
    assert_eq!(add_rule.rhs.nonterm_leaves().len(), 1);
}

#[test]
fn chain_rules_from_pure_moves() {
    // A machine with a register-to-register move yields a chain rule.
    let src = r#"
        module R {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(4);
            in pin: bit(8);
            parts { r1: R; r2: R; }
            connections {
                r1.d = pin;
                r1.en = I[0];
                r2.d = r1.q;
                r2.en = I[1];
            }
        }
    "#;
    let (n, ex) = pipeline(src);
    let g = TreeGrammar::from_base(&ex.base, &n);
    let chains: Vec<_> = g.chain_rules().collect();
    assert_eq!(chains.len(), 1);
    let (rule, src_nt) = chains[0];
    assert_eq!(g.nonterm_name(rule.lhs), "r2");
    assert_eq!(g.nonterm_name(src_nt), "r1");
    assert_eq!(rule.cost, 1);
}

#[test]
fn check_reports_unwritable_register() {
    // r2 is never connected: no RT rule can write it.
    let src = r#"
        module R {
            in d: bit(8);
            ctrl en: bit(1);
            out q: bit(8);
            register q = d when en == 1;
        }
        processor P {
            instruction word: bit(4);
            in pin: bit(8);
            parts { r1: R; r2: R; }
            connections {
                r1.d = pin;
                r1.en = I[0];
            }
        }
    "#;
    let (n, ex) = pipeline(src);
    let g = TreeGrammar::from_base(&ex.base, &n);
    // r2 still has its stop rule, so `check` does not flag "no rules"; but
    // an unconnected register is unreachable from START only if nothing
    // derives through it.  The stop rule means r2 can appear as a leaf; the
    // real signal is that r2's only rules are stop rules.
    let r2 = g
        .nonterm_of(crate::types::NonTermKind::Reg(
            n.storage_by_name("r2").unwrap().id,
        ))
        .unwrap();
    let rt_rules: Vec<_> = g
        .rules_for(r2)
        .filter(|r| matches!(r.origin, RuleOrigin::Template(_)))
        .collect();
    assert!(rt_rules.is_empty());
}

#[test]
fn et_builder_and_matching() {
    let (n, ex) = pipeline(ACC_MACHINE);
    let g = TreeGrammar::from_base(&ex.base, &n);
    let acc = n.storage_by_name("acc").unwrap().id;
    let ram = n.storage_by_name("ram").unwrap().id;

    let mut b = EtBuilder::new();
    let a = b.leaf(EtKind::RegLeaf(acc));
    let addr = b.leaf(EtKind::Const(5));
    let m = b.node(EtKind::MemRead(ram), vec![addr]);
    b.node(EtKind::Op(OpKind::Add), vec![a, m]);
    let et = Et::assign(EtDest::Reg(acc), b);

    assert_eq!(et.len(), 5);
    let root = et.root();
    assert!(et.kind_matches(root, &TermKey::Assign(AssignKey::Reg(acc))));
    // Constant 5 fits a 4-bit immediate but not a 2-bit one.
    assert!(et.kind_matches(addr, &TermKey::Imm { hi: 5, lo: 2 }));
    assert!(!et.kind_matches(addr, &TermKey::Imm { hi: 1, lo: 0 }));
    assert!(et.kind_matches(addr, &TermKey::ConstVal(5)));
    assert!(!et.kind_matches(addr, &TermKey::ConstVal(6)));
    let _ = g;
}

#[test]
fn render_is_stable() {
    let (n, ex) = pipeline(ACC_MACHINE);
    let g = TreeGrammar::from_base(&ex.base, &n);
    let text = g.render(&n);
    assert!(text.contains("START -> ASSIGN_acc(acc)"));
    assert!(text.contains("acc -> add(acc, ram_read(imm5_2)) [1]"));
    assert!(text.contains("acc -> acc_leaf [0]"));
}
