//! Systematic translation of a template base into a tree grammar
//! (paper §3.1, "the grammar components are constructed as follows").

use crate::types::*;
use record_netlist::PortDir;
use record_netlist::{Netlist, ProcPortId, StorageKind};
use record_rtl::{Dest, Pattern, TemplateBase};
use std::collections::BTreeMap;

impl TreeGrammar {
    /// Builds the grammar for `base` over the storages and ports of
    /// `netlist`.
    ///
    /// Construction is total: malformed situations (e.g. a register that no
    /// template can write) do not fail here but are reported by
    /// [`TreeGrammar::check`].
    pub fn from_base(base: &TemplateBase, netlist: &Netlist) -> TreeGrammar {
        // Non-terminals: START, then storages (registers & register files),
        // then output ports.
        let mut nonterms = vec![NonTermKind::Start];
        let mut nt_names = vec!["START".to_owned()];
        let mut by_kind: BTreeMap<NonTermKind, NonTermId> = BTreeMap::new();
        by_kind.insert(NonTermKind::Start, NonTermId::START);
        let mut add_nt = |kind: NonTermKind, name: String| {
            let id = NonTermId(nonterms.len() as u32);
            nonterms.push(kind);
            nt_names.push(name);
            by_kind.insert(kind, id);
            id
        };
        for s in netlist.storages() {
            // The program counter is not a value location the selector may
            // compute into; branch emission handles its templates directly.
            if s.is_pc {
                continue;
            }
            match s.kind {
                StorageKind::Register => {
                    add_nt(NonTermKind::Reg(s.id), s.name.clone());
                }
                StorageKind::RegFile => {
                    add_nt(NonTermKind::RegFile(s.id), s.name.clone());
                }
                StorageKind::Memory => {} // memories are not value locations
            }
        }
        for (i, p) in netlist.proc_ports().iter().enumerate() {
            if p.dir == PortDir::Out {
                add_nt(NonTermKind::Port(ProcPortId(i as u32)), p.name.clone());
            }
        }

        let nt = |kind: NonTermKind| -> NonTermId {
            *by_kind.get(&kind).expect("non-terminal registered above")
        };

        let mut rules: Vec<Rule> = Vec::new();
        let push =
            |lhs: NonTermId, rhs: GPat, cost: u32, origin: RuleOrigin, rules: &mut Vec<Rule>| {
                let id = RuleId(rules.len() as u32);
                rules.push(Rule {
                    id,
                    lhs,
                    rhs,
                    cost,
                    origin,
                });
            };

        // 1. Start rules: START -> ASSIGN_dest(NonTerm(dest)), cost 0.
        for s in netlist.storages() {
            if s.is_pc {
                continue;
            }
            match s.kind {
                StorageKind::Register => {
                    let dest_nt = nt(NonTermKind::Reg(s.id));
                    push(
                        NonTermId::START,
                        GPat::T(
                            TermKey::Assign(AssignKey::Reg(s.id)),
                            vec![GPat::NT(dest_nt)],
                        ),
                        0,
                        RuleOrigin::Start,
                        &mut rules,
                    );
                }
                StorageKind::RegFile => {
                    let dest_nt = nt(NonTermKind::RegFile(s.id));
                    push(
                        NonTermId::START,
                        GPat::T(
                            TermKey::Assign(AssignKey::RegFile(s.id)),
                            vec![GPat::NT(dest_nt)],
                        ),
                        0,
                        RuleOrigin::Start,
                        &mut rules,
                    );
                }
                StorageKind::Memory => {}
            }
        }
        for (i, p) in netlist.proc_ports().iter().enumerate() {
            if p.dir == PortDir::Out {
                let pid = ProcPortId(i as u32);
                let dest_nt = nt(NonTermKind::Port(pid));
                push(
                    NonTermId::START,
                    GPat::T(
                        TermKey::Assign(AssignKey::Port(pid)),
                        vec![GPat::NT(dest_nt)],
                    ),
                    0,
                    RuleOrigin::Start,
                    &mut rules,
                );
            }
        }

        // 2. RT rules: one per template, cost 1.
        for t in base.templates() {
            // Control-transfer templates (PC writes, predicated or not) are
            // not expression rules; branch emission selects them directly.
            if t.pred.is_some() || t.dest.storage().is_some_and(|s| netlist.storage(s).is_pc) {
                continue;
            }
            let rhs_of = |p: &Pattern| lower_pattern(p, &by_kind);
            match &t.dest {
                Dest::Reg(s) => {
                    push(
                        nt(NonTermKind::Reg(*s)),
                        rhs_of(&t.src),
                        1,
                        RuleOrigin::Template(t.id),
                        &mut rules,
                    );
                }
                Dest::RegFile(s) => {
                    push(
                        nt(NonTermKind::RegFile(*s)),
                        rhs_of(&t.src),
                        1,
                        RuleOrigin::Template(t.id),
                        &mut rules,
                    );
                }
                Dest::Port(p) => {
                    push(
                        nt(NonTermKind::Port(*p)),
                        rhs_of(&t.src),
                        1,
                        RuleOrigin::Template(t.id),
                        &mut rules,
                    );
                }
                Dest::Mem(s, addr) => {
                    // Memory stores derive the whole statement: START ->
                    // STORE_mem(addr, value), cost 1.
                    push(
                        NonTermId::START,
                        GPat::T(TermKey::Store(*s), vec![rhs_of(addr), rhs_of(&t.src)]),
                        1,
                        RuleOrigin::Template(t.id),
                        &mut rules,
                    );
                }
            }
        }

        // 3. Stop rules: NonTerm(reg) -> Term(reg), cost 0.
        for s in netlist.storages() {
            if s.is_pc {
                continue;
            }
            match s.kind {
                StorageKind::Register => {
                    push(
                        nt(NonTermKind::Reg(s.id)),
                        GPat::T(TermKey::RegLeaf(s.id), vec![]),
                        0,
                        RuleOrigin::Stop(s.id),
                        &mut rules,
                    );
                }
                StorageKind::RegFile => {
                    push(
                        nt(NonTermKind::RegFile(s.id)),
                        GPat::T(TermKey::RfLeaf(s.id), vec![]),
                        0,
                        RuleOrigin::Stop(s.id),
                        &mut rules,
                    );
                }
                StorageKind::Memory => {}
            }
        }

        TreeGrammar::new_internal(nonterms, nt_names, by_kind, rules)
    }

    /// [`TreeGrammar::from_base`] wrapped in a `"rule-gen"` trace span,
    /// with the grammar's size reported as counters.
    pub fn from_base_probed(
        base: &TemplateBase,
        netlist: &Netlist,
        probe: &mut record_probe::Probe<'_>,
    ) -> TreeGrammar {
        probe.begin("rule-gen");
        let g = TreeGrammar::from_base(base, netlist);
        probe.count("rule-gen.nonterminals", g.nonterm_count() as u64);
        probe.count("rule-gen.rules", g.rules().len() as u64);
        probe.end("rule-gen");
        g
    }
}

/// Paper table 2: the `L(exp)` map from template expressions to rule
/// right-hand sides.
fn lower_pattern(p: &Pattern, by_kind: &BTreeMap<NonTermKind, NonTermId>) -> GPat {
    match p {
        Pattern::Op(op, args) => GPat::T(
            TermKey::Op(*op),
            args.iter().map(|a| lower_pattern(a, by_kind)).collect(),
        ),
        Pattern::Reg(s) => match by_kind.get(&NonTermKind::Reg(*s)) {
            Some(&nt) => GPat::NT(nt),
            None => GPat::T(TermKey::RegLeaf(*s), vec![]),
        },
        Pattern::RegFile(s) => match by_kind.get(&NonTermKind::RegFile(*s)) {
            Some(&nt) => GPat::NT(nt),
            None => GPat::T(TermKey::RfLeaf(*s), vec![]),
        },
        Pattern::MemRead(s, addr) => {
            GPat::T(TermKey::MemRead(*s), vec![lower_pattern(addr, by_kind)])
        }
        Pattern::Port(p) => GPat::T(TermKey::PortLeaf(*p), vec![]),
        Pattern::Const(v) => GPat::T(TermKey::ConstVal(*v), vec![]),
        Pattern::Imm { hi, lo } => GPat::T(TermKey::Imm { hi: *hi, lo: *lo }, vec![]),
    }
}
