//! The fast-path storage primitives of the BDD kernel.
//!
//! Profiles of retargeting and compilation bottom out in two lookups per
//! `apply` step: "does this (var, lo, hi) triple already have a node?"
//! (the unique table) and "did we combine these operands before?" (the
//! operation cache).  The std `HashMap` answers both correctly but pays
//! SipHash, tombstone bookkeeping and branchy probing for DoS resistance
//! this workload does not need — every key is produced by the kernel
//! itself.  This module replaces them with:
//!
//! * [`UniqueTable`] — an insert-only open-addressing table over
//!   power-of-two capacities with FxHash-style multiplicative hashing and
//!   linear probing.  Entries are node handles; the node payloads stay in
//!   the manager's dense `Vec<Node>`, so the table is four bytes per slot
//!   and a lookup is a multiply, a mask and (almost always) one probe.
//!   Nothing is ever deleted (hash-consed nodes are immortal), so there
//!   are no tombstones and probe chains never degrade.
//! * [`OpCache`] — a fixed-size direct-mapped *lossy* cache for `apply`
//!   results.  A new result simply overwrites whatever hashed to the same
//!   slot.  Losing an entry can only cause recomputation, and
//!   recomputation is hash-consed, so results are node-for-node identical
//!   to an unbounded cache — only the hit rate changes (there is a unit
//!   test pinning exactly that).  The win is bounded memory and no
//!   rehashing on the compile hot path.
//!
//! Both tables start unallocated so a [`crate::BddOverlay`] costs nothing
//! to open until its session actually creates nodes.

use crate::manager::{Node, OpKey};
use crate::Bdd;

/// FxHash multiplier (the golden-ratio-derived constant rustc's FxHasher
/// uses); one multiply mixes well enough for kernel-generated keys.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fxmix(h: u64, x: u64) -> u64 {
    (h.rotate_left(5) ^ x).wrapping_mul(FX_SEED)
}

/// Hash of a node triple.
#[inline]
fn hash_node(n: &Node) -> u64 {
    fxmix(
        fxmix(fxmix(0, u64::from(n.var.0)), u64::from(n.lo.0)),
        u64::from(n.hi.0),
    )
}

/// Hash of an interned string (FxHash over bytes).
#[inline]
pub(crate) fn hash_str(s: &str) -> u64 {
    let mut h = 0u64;
    let mut bytes = s.as_bytes();
    while bytes.len() >= 8 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[..8]);
        h = fxmix(h, u64::from_le_bytes(w));
        bytes = &bytes[8..];
    }
    let mut tail = 0u64;
    for &b in bytes {
        tail = (tail << 8) | u64::from(b);
    }
    fxmix(h, tail ^ (s.len() as u64) << 56)
}

const EMPTY: u32 = u32::MAX;

/// Insert-only open-addressing unique table mapping `Node` triples to
/// their canonical handles.
///
/// Slots hold handles; the caller passes the dense node store to every
/// operation so keys can be compared without duplicating the payload.
#[derive(Debug, Clone, Default)]
pub(crate) struct UniqueTable {
    /// Power-of-two slot array of node handles (`EMPTY` = vacant).
    slots: Vec<u32>,
    len: usize,
    /// Probe steps taken across all lookups (first slot touched counts as
    /// one), for the machine-independent perf counters.
    probes: u64,
    lookups: u64,
}

impl UniqueTable {
    /// Mean probe-chain length over all lookups so far (1.0 is a perfect
    /// hash; linear probing at our load factor stays well under 2).
    pub(crate) fn avg_probe_len(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.probes as f64 / self.lookups as f64
    }

    /// Raw `(probes, lookups)` counters behind [`Self::avg_probe_len`].
    pub(crate) fn probe_counters(&self) -> (u64, u64) {
        (self.probes, self.lookups)
    }

    /// Looks up the handle of `node`, resolving slot handles through
    /// `nodes` (handle `h` refers to `nodes[h]`).
    pub(crate) fn get(&mut self, node: &Node, nodes: &[Node]) -> Option<Bdd> {
        self.lookups += 1;
        let (found, probes) = self.find(node, nodes);
        self.probes += probes;
        found
    }

    /// Read-only lookup (used against frozen tables, which cannot count).
    pub(crate) fn probe(&self, node: &Node, nodes: &[Node]) -> Option<Bdd> {
        self.find(node, nodes).0
    }

    #[inline]
    fn find(&self, node: &Node, nodes: &[Node]) -> (Option<Bdd>, u64) {
        if self.slots.is_empty() {
            return (None, 1);
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash_node(node) as usize) & mask;
        let mut probes = 0;
        loop {
            probes += 1;
            let slot = self.slots[i];
            if slot == EMPTY {
                return (None, probes);
            }
            if nodes[slot as usize] == *node {
                return (Some(Bdd(slot)), probes);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `handle` for its node (which must not be present yet).
    pub(crate) fn insert(&mut self, handle: Bdd, nodes: &[Node]) {
        // Grow at 3/4 load so probe chains stay short; insert-only tables
        // never shrink.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(nodes);
        }
        let mask = self.slots.len() - 1;
        let node = &nodes[handle.0 as usize];
        let mut i = (hash_node(node) as usize) & mask;
        while self.slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = handle.0;
        self.len += 1;
    }

    /// Empties the table while keeping its slot allocation, so a pooled
    /// session re-fills warm pages instead of re-growing from scratch.
    /// The probe counters are cumulative across the table's lifetime and
    /// deliberately survive (per-compile reporting works on deltas).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    fn grow(&mut self, nodes: &[Node]) {
        let cap = (self.slots.len() * 2).max(64);
        let mask = cap - 1;
        let mut slots = vec![EMPTY; cap];
        for &h in self.slots.iter().filter(|&&h| h != EMPTY) {
            let mut i = (hash_node(&nodes[h as usize]) as usize) & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = h;
        }
        self.slots = slots;
    }
}

/// One direct-mapped cache line: an [`OpKey`] flattened to `(tag, a, b)`
/// plus the cached result.
#[derive(Debug, Clone, Copy)]
struct OpEntry {
    tag: u8,
    a: u32,
    b: u32,
    result: u32,
}

const VACANT: u8 = u8::MAX;

impl OpKey {
    /// Flattens to `(tag, a, b)`; unary keys use `b = 0`.
    #[inline]
    fn flatten(self) -> (u8, u32, u32) {
        match self {
            OpKey::And(a, b) => (0, a.0, b.0),
            OpKey::Or(a, b) => (1, a.0, b.0),
            OpKey::Xor(a, b) => (2, a.0, b.0),
            OpKey::Not(a) => (3, a.0, 0),
        }
    }
}

/// Fixed-size direct-mapped lossy cache of `apply` results.
#[derive(Debug, Clone)]
pub(crate) struct OpCache {
    /// Allocated lazily at `capacity` entries on first insert.
    entries: Vec<OpEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// Default capacity: 64Ki entries x 16 bytes = 1 MiB, sized for
/// retarget-scale managers.
pub(crate) const MANAGER_OP_CACHE: usize = 1 << 16;
/// Session overlays see far fewer distinct operand pairs; 4Ki entries keep
/// a batch of concurrent sessions cheap.
pub(crate) const OVERLAY_OP_CACHE: usize = 1 << 12;

/// Defaults to overlay sizing — the only context that needs a
/// `Default` (recycled [`crate::OverlayPages`]) is the session overlay.
impl Default for OpCache {
    fn default() -> OpCache {
        OpCache::new(OVERLAY_OP_CACHE)
    }
}

impl OpCache {
    /// An empty cache that will allocate `capacity` slots (rounded up to a
    /// power of two) on first insert.
    pub(crate) fn new(capacity: usize) -> OpCache {
        OpCache {
            entries: Vec::new(),
            capacity: capacity.next_power_of_two().max(2),
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hits over total lookups so far.
    pub(crate) fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// `(hits, misses)` counters.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Records a hit served elsewhere (an overlay probing its frozen
    /// base's cache counts the hit against its own session).
    #[inline]
    pub(crate) fn count_hit(&mut self) {
        self.hits += 1;
    }

    #[inline]
    fn index(&self, tag: u8, a: u32, b: u32) -> usize {
        let h = fxmix(fxmix(fxmix(0, u64::from(tag)), u64::from(a)), u64::from(b));
        (h as usize) & (self.entries.len() - 1)
    }

    /// Counting lookup for the owner of the cache.
    #[inline]
    pub(crate) fn lookup(&mut self, key: OpKey) -> Option<Bdd> {
        match self.probe(key) {
            Some(r) => {
                self.hits += 1;
                Some(r)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Read-only probe (used by overlays against a frozen base cache; the
    /// overlay does its own counting).
    #[inline]
    pub(crate) fn probe(&self, key: OpKey) -> Option<Bdd> {
        if self.entries.is_empty() {
            return None;
        }
        let (tag, a, b) = key.flatten();
        let e = self.entries[self.index(tag, a, b)];
        (e.tag == tag && e.a == a && e.b == b).then_some(Bdd(e.result))
    }

    /// Vacates every line while keeping the allocation (hit/miss counters
    /// are lifetime-cumulative and survive, like the unique table's).
    pub(crate) fn clear(&mut self) {
        for e in &mut self.entries {
            e.tag = VACANT;
        }
    }

    /// Stores `result`, overwriting whatever occupied the slot (lossy).
    #[inline]
    pub(crate) fn insert(&mut self, key: OpKey, result: Bdd) {
        if self.entries.is_empty() {
            self.entries = vec![
                OpEntry {
                    tag: VACANT,
                    a: 0,
                    b: 0,
                    result: 0,
                };
                self.capacity
            ];
        }
        let (tag, a, b) = key.flatten();
        let i = self.index(tag, a, b);
        self.entries[i] = OpEntry {
            tag,
            a,
            b,
            result: result.0,
        };
    }
}
