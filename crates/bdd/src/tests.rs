use crate::{Assignment, Bdd, BddManager, BddOps, BddOverlay, FrozenBdd};
use proptest::prelude::*;

fn three_vars() -> (BddManager, Bdd, Bdd, Bdd) {
    let mut m = BddManager::new();
    let a = m.var("a");
    let b = m.var("b");
    let c = m.var("c");
    (m, a, b, c)
}

#[test]
fn terminal_constants() {
    let m = BddManager::new();
    assert!(m.is_false(Bdd::FALSE));
    assert!(m.is_true(Bdd::TRUE));
    assert!(m.is_sat(Bdd::TRUE));
    assert!(!m.is_sat(Bdd::FALSE));
    assert_eq!(m.constant(true), Bdd::TRUE);
    assert_eq!(m.constant(false), Bdd::FALSE);
}

#[test]
fn var_is_idempotent() {
    let mut m = BddManager::new();
    let a1 = m.var("a");
    let a2 = m.var("a");
    assert_eq!(a1, a2);
    assert_eq!(m.var_count(), 1);
}

#[test]
fn and_or_basics() {
    let (mut m, a, b, _) = three_vars();
    let ab = m.and(a, b);
    assert!(m.is_sat(ab));
    let na = m.not(a);
    assert!(m.is_false(m.constant(false)));
    let contra = m.and(a, na);
    assert_eq!(contra, Bdd::FALSE);
    let tauto = m.or(a, na);
    assert_eq!(tauto, Bdd::TRUE);
    assert_eq!(m.and(ab, Bdd::TRUE), ab);
    assert_eq!(m.or(ab, Bdd::FALSE), ab);
}

#[test]
fn canonicity_structural_equality() {
    let (mut m, a, b, c) = three_vars();
    // (a&b)|c == (b&a)|c must be the same node.
    let l = {
        let ab = m.and(a, b);
        m.or(ab, c)
    };
    let r = {
        let ba = m.and(b, a);
        m.or(c, ba)
    };
    assert_eq!(l, r);
}

#[test]
fn restrict_and_exists() {
    let (mut m, a, b, _) = three_vars();
    let f = m.and(a, b);
    let va = m.var_id("a");
    let f1 = m.restrict(f, va, true);
    assert_eq!(f1, b);
    let f0 = m.restrict(f, va, false);
    assert_eq!(f0, Bdd::FALSE);
    let ex = m.exists(f, va);
    assert_eq!(ex, b);
}

#[test]
fn sat_count_small() {
    let (mut m, a, b, c) = three_vars();
    // a | b over 3 registered vars: 6 of 8 assignments.
    let f = m.or(a, b);
    assert_eq!(m.sat_count(f), 6);
    let g = m.and(f, c);
    assert_eq!(m.sat_count(g), 3);
    assert_eq!(m.sat_count(Bdd::TRUE), 8);
    assert_eq!(m.sat_count(Bdd::FALSE), 0);
}

#[test]
fn support_set() {
    let (mut m, a, _, c) = three_vars();
    let f = m.and(a, c);
    let sup = m.support(f);
    let names: Vec<_> = sup.iter().map(|&v| m.var_name(v).to_owned()).collect();
    assert_eq!(names, vec!["a", "c"]);
    assert!(m.support(Bdd::TRUE).is_empty());
}

#[test]
fn one_sat_round_trip() {
    let (mut m, a, b, c) = three_vars();
    let nb = m.not(b);
    let f = m.and(a, nb);
    let f = m.and(f, c);
    let lits = m.one_sat(f).unwrap();
    let mut assignment = vec![false; m.var_count()];
    for (v, ph) in lits {
        assignment[v.0 as usize] = ph;
    }
    assert!(m.eval(f, &assignment));
    assert!(m.one_sat(Bdd::FALSE).is_none());
}

#[test]
fn vector_equals_builds_field_conditions() {
    let mut m = BddManager::new();
    let bits: Vec<_> = (0..4).map(|i| m.var(&format!("I[{i}]"))).collect();
    let f5 = m.vector_equals(&bits, 5); // 0101
    assert_eq!(m.sat_count(f5), 1);
    let f3 = m.vector_equals(&bits, 3); // 0011
    let both = m.and(f5, f3);
    assert!(m.is_false(both), "a field cannot be 5 and 3 at once");
}

#[test]
fn assignment_bit_pattern() {
    let mut m = BddManager::new();
    let bits: Vec<_> = (0..4).map(|i| m.var(&format!("I[{i}]"))).collect();
    let f = m.vector_equals(&bits, 0b1010);
    let asg = Assignment::satisfying(&m, f).unwrap();
    assert_eq!(asg.to_bit_pattern(4), "1010");
    assert_eq!(asg.constrained(), 4);
}

#[test]
fn to_cubes_rendering() {
    let (mut m, a, b, _) = three_vars();
    assert_eq!(m.to_cubes(Bdd::FALSE), "0");
    assert_eq!(m.to_cubes(Bdd::TRUE), "1");
    let f = m.and(a, b);
    assert_eq!(m.to_cubes(f), "a&b");
}

#[test]
fn ite_matches_definition() {
    let (mut m, a, b, c) = three_vars();
    let i = m.ite(a, b, c);
    let ab = m.and(a, b);
    let na = m.not(a);
    let nac = m.and(na, c);
    let expect = m.or(ab, nac);
    assert_eq!(i, expect);
}

// ------------------------------------------------------------ frozen/overlay

#[test]
fn frozen_is_send_sync_and_overlay_is_send() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<FrozenBdd>();
    assert_send::<BddOverlay<'_>>();
}

#[test]
fn frozen_preserves_handles_and_queries() {
    let (mut m, a, b, _) = three_vars();
    let ab = m.and(a, b);
    let count = m.node_count();
    let frozen = m.freeze();
    assert_eq!(frozen.node_count(), count);
    assert_eq!(frozen.var_count(), 3);
    assert!(frozen.is_sat(ab));
    assert_eq!(frozen.sat_count(ab), 2); // a&b over 3 vars
    assert_eq!(frozen.to_cubes(ab), "a&b");
    assert_eq!(frozen.var_id_of("a"), Some(crate::VarId(0)));
    assert_eq!(frozen.var_id_of("nope"), None);
    let sup = frozen.support(ab);
    assert_eq!(sup.len(), 2);
}

#[test]
fn overlay_reuses_frozen_nodes() {
    let (mut m, a, b, _) = three_vars();
    let ab = m.and(a, b);
    let frozen = m.freeze();
    let mut s = frozen.overlay();
    // Recreating a function the base owns yields the canonical frozen
    // handle and allocates nothing locally.
    assert_eq!(s.and(a, b), ab);
    assert_eq!(s.local_node_count(), 0);
    // A genuinely new function lands in the session page.
    let c = s.var("c");
    let abc = s.and(ab, c);
    assert!(s.local_node_count() > 0);
    assert!(s.is_sat(abc));
    assert!(s.eval(abc, &[true, true, true]));
    assert!(!s.eval(abc, &[true, true, false]));
}

#[test]
fn overlays_are_isolated_and_deterministic() {
    let (m, a, b, c) = three_vars();
    let frozen = m.freeze();
    let (f1, n1) = {
        let mut s = frozen.overlay();
        let ab = s.and(a, b);
        (s.and(ab, c), s.local_node_count())
    };
    let (f2, n2) = {
        let mut s = frozen.overlay();
        let ab = s.and(a, b);
        (s.and(ab, c), s.local_node_count())
    };
    // Same base, same operations: byte-identical handles and page sizes,
    // regardless of what other overlays did in between.
    assert_eq!(f1, f2);
    assert_eq!(n1, n2);
}

#[test]
fn overlay_registers_new_variables_above_frozen_ones() {
    let (m, _, _, _) = three_vars();
    let frozen = m.freeze();
    let mut s = frozen.overlay();
    // Frozen variables resolve to their frozen ids.
    assert_eq!(s.var_id("a"), crate::VarId(0));
    // New names go above the frozen range, idempotently.
    let d1 = s.var_id("d");
    let d2 = s.var_id("d");
    assert_eq!(d1, d2);
    assert_eq!(d1, crate::VarId(3));
    assert_eq!(s.var_name(d1), "d");
    assert_eq!(s.var_name(crate::VarId(0)), "a");
    assert_eq!(s.var_count(), 4);
    let lit = s.literal(d1, false);
    assert!(s.is_sat(lit));
}

#[test]
fn overlay_vector_equals_matches_manager() {
    let mut m = BddManager::new();
    let bits: Vec<_> = (0..4).map(|i| m.var(&format!("I[{i}]"))).collect();
    let f5 = m.vector_equals(&bits, 5);
    let frozen = m.freeze();
    let mut s = frozen.overlay();
    let again = BddOps::vector_equals(&mut s, &bits, 5);
    assert_eq!(again, f5);
    let f3 = BddOps::vector_equals(&mut s, &bits, 3);
    let both = s.and(f5, f3);
    assert!(s.is_false(both));
}

// ---------------------------------------------------------------------------
// Property tests: BDD operations agree with a brute-force truth-table oracle
// over up to 5 variables.
// ---------------------------------------------------------------------------

/// A tiny Boolean expression AST for the oracle.
#[derive(Debug, Clone)]
enum BExp {
    Var(usize),
    Const(bool),
    Not(Box<BExp>),
    And(Box<BExp>, Box<BExp>),
    Or(Box<BExp>, Box<BExp>),
    Xor(Box<BExp>, Box<BExp>),
}

fn bexp_strategy(nvars: usize) -> impl Strategy<Value = BExp> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(BExp::Var),
        any::<bool>().prop_map(BExp::Const),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| BExp::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BExp::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BExp::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| BExp::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_bexp(e: &BExp, asg: &[bool]) -> bool {
    match e {
        BExp::Var(i) => asg[*i],
        BExp::Const(c) => *c,
        BExp::Not(a) => !eval_bexp(a, asg),
        BExp::And(a, b) => eval_bexp(a, asg) && eval_bexp(b, asg),
        BExp::Or(a, b) => eval_bexp(a, asg) || eval_bexp(b, asg),
        BExp::Xor(a, b) => eval_bexp(a, asg) ^ eval_bexp(b, asg),
    }
}

fn build_bdd(m: &mut BddManager, e: &BExp) -> Bdd {
    match e {
        BExp::Var(i) => m.var(&format!("v{i}")),
        BExp::Const(c) => m.constant(*c),
        BExp::Not(a) => {
            let x = build_bdd(m, a);
            m.not(x)
        }
        BExp::And(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.and(x, y)
        }
        BExp::Or(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.or(x, y)
        }
        BExp::Xor(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.xor(x, y)
        }
    }
}

fn build_bdd_ops<M: BddOps>(m: &mut M, e: &BExp) -> Bdd {
    match e {
        BExp::Var(i) => m.var(&format!("v{i}")),
        BExp::Const(c) => {
            if *c {
                Bdd::TRUE
            } else {
                Bdd::FALSE
            }
        }
        BExp::Not(a) => {
            let x = build_bdd_ops(m, a);
            m.not(x)
        }
        BExp::And(a, b) => {
            let x = build_bdd_ops(m, a);
            let y = build_bdd_ops(m, b);
            m.and(x, y)
        }
        BExp::Or(a, b) => {
            let x = build_bdd_ops(m, a);
            let y = build_bdd_ops(m, b);
            m.or(x, y)
        }
        BExp::Xor(a, b) => {
            let x = build_bdd_ops(m, a);
            let y = build_bdd_ops(m, b);
            m.xor(x, y)
        }
    }
}

const NVARS: usize = 5;

fn fresh_manager() -> BddManager {
    let mut m = BddManager::new();
    for i in 0..NVARS {
        m.var(&format!("v{i}"));
    }
    m
}

proptest! {
    #[test]
    fn bdd_agrees_with_truth_table(e in bexp_strategy(NVARS)) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        for bits in 0u32..(1 << NVARS) {
            let asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(m.eval(f, &asg), eval_bexp(&e, &asg));
        }
    }

    #[test]
    fn sat_count_matches_truth_table(e in bexp_strategy(NVARS)) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        let expected = (0u32..(1 << NVARS))
            .filter(|bits| {
                let asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
                eval_bexp(&e, &asg)
            })
            .count() as u128;
        prop_assert_eq!(m.sat_count(f), expected);
    }

    #[test]
    fn de_morgan(a in bexp_strategy(3), b in bexp_strategy(3)) {
        let mut m = fresh_manager();
        let fa = build_bdd(&mut m, &a);
        let fb = build_bdd(&mut m, &b);
        let ab = m.and(fa, fb);
        let l = m.not(ab);
        let na = m.not(fa);
        let nb = m.not(fb);
        let r = m.or(na, nb);
        prop_assert_eq!(l, r);
    }

    #[test]
    fn double_negation(e in bexp_strategy(4)) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        let nf = m.not(f);
        let nnf = m.not(nf);
        prop_assert_eq!(nnf, f);
    }

    #[test]
    fn one_sat_is_satisfying(e in bexp_strategy(NVARS)) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        if let Some(lits) = m.one_sat(f) {
            let mut asg = vec![false; NVARS];
            for (v, ph) in lits {
                asg[v.0 as usize] = ph;
            }
            prop_assert!(m.eval(f, &asg));
        } else {
            prop_assert_eq!(f, Bdd::FALSE);
        }
    }

    /// An overlay over a frozen base computes exactly what a lone mutable
    /// manager computes, for any split of the work between base and
    /// session: `a` is built (and frozen) in the manager, `b` and the
    /// combination in the overlay.
    #[test]
    fn overlay_agrees_with_manager(a in bexp_strategy(NVARS), b in bexp_strategy(NVARS)) {
        // Oracle: everything in one mutable manager.
        let mut m1 = fresh_manager();
        let fa1 = build_bdd(&mut m1, &a);
        let fb1 = build_bdd(&mut m1, &b);
        let and1 = m1.and(fa1, fb1);
        let or1 = m1.or(fa1, fb1);

        // Split: `a` is retarget-time (frozen), `b` is compile-time.
        let mut m2 = fresh_manager();
        let fa2 = build_bdd(&mut m2, &a);
        let frozen = m2.freeze();
        let mut s = frozen.overlay();
        let fb2 = build_bdd_ops(&mut s, &b);
        let and2 = s.and(fa2, fb2);
        let or2 = s.or(fa2, fb2);

        for bits in 0u32..(1 << NVARS) {
            let asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(s.eval(and2, &asg), m1.eval(and1, &asg));
            prop_assert_eq!(s.eval(or2, &asg), m1.eval(or1, &asg));
            prop_assert_eq!(s.eval(fb2, &asg), m1.eval(fb1, &asg));
        }
        // Satisfiability agrees too (constant-time check used by compaction).
        prop_assert_eq!(s.is_sat(and2), m1.is_sat(and1));
    }

    #[test]
    fn restrict_is_cofactor(e in bexp_strategy(NVARS), var in 0..NVARS, val: bool) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        let vid = m.var_id(&format!("v{var}"));
        let g = m.restrict(f, vid, val);
        for bits in 0u32..(1 << NVARS) {
            let mut asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            asg[var] = val;
            prop_assert_eq!(m.eval(g, &asg), m.eval(f, &asg));
        }
    }
}
