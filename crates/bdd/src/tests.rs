use crate::{Assignment, Bdd, BddManager, BddOps, BddOverlay, FrozenBdd};
use proptest::prelude::*;

fn three_vars() -> (BddManager, Bdd, Bdd, Bdd) {
    let mut m = BddManager::new();
    let a = m.var("a");
    let b = m.var("b");
    let c = m.var("c");
    (m, a, b, c)
}

#[test]
fn terminal_constants() {
    let m = BddManager::new();
    assert!(m.is_false(Bdd::FALSE));
    assert!(m.is_true(Bdd::TRUE));
    assert!(m.is_sat(Bdd::TRUE));
    assert!(!m.is_sat(Bdd::FALSE));
    assert_eq!(m.constant(true), Bdd::TRUE);
    assert_eq!(m.constant(false), Bdd::FALSE);
}

#[test]
fn var_is_idempotent() {
    let mut m = BddManager::new();
    let a1 = m.var("a");
    let a2 = m.var("a");
    assert_eq!(a1, a2);
    assert_eq!(m.var_count(), 1);
}

#[test]
fn and_or_basics() {
    let (mut m, a, b, _) = three_vars();
    let ab = m.and(a, b);
    assert!(m.is_sat(ab));
    let na = m.not(a);
    assert!(m.is_false(m.constant(false)));
    let contra = m.and(a, na);
    assert_eq!(contra, Bdd::FALSE);
    let tauto = m.or(a, na);
    assert_eq!(tauto, Bdd::TRUE);
    assert_eq!(m.and(ab, Bdd::TRUE), ab);
    assert_eq!(m.or(ab, Bdd::FALSE), ab);
}

#[test]
fn canonicity_structural_equality() {
    let (mut m, a, b, c) = three_vars();
    // (a&b)|c == (b&a)|c must be the same node.
    let l = {
        let ab = m.and(a, b);
        m.or(ab, c)
    };
    let r = {
        let ba = m.and(b, a);
        m.or(c, ba)
    };
    assert_eq!(l, r);
}

#[test]
fn restrict_and_exists() {
    let (mut m, a, b, _) = three_vars();
    let f = m.and(a, b);
    let va = m.var_id("a");
    let f1 = m.restrict(f, va, true);
    assert_eq!(f1, b);
    let f0 = m.restrict(f, va, false);
    assert_eq!(f0, Bdd::FALSE);
    let ex = m.exists(f, va);
    assert_eq!(ex, b);
}

#[test]
fn sat_count_small() {
    let (mut m, a, b, c) = three_vars();
    // a | b over 3 registered vars: 6 of 8 assignments.
    let f = m.or(a, b);
    assert_eq!(m.sat_count(f), 6);
    let g = m.and(f, c);
    assert_eq!(m.sat_count(g), 3);
    assert_eq!(m.sat_count(Bdd::TRUE), 8);
    assert_eq!(m.sat_count(Bdd::FALSE), 0);
}

#[test]
fn support_set() {
    let (mut m, a, _, c) = three_vars();
    let f = m.and(a, c);
    let sup = m.support(f);
    let names: Vec<_> = sup.iter().map(|&v| m.var_name(v).to_owned()).collect();
    assert_eq!(names, vec!["a", "c"]);
    assert!(m.support(Bdd::TRUE).is_empty());
}

#[test]
fn one_sat_round_trip() {
    let (mut m, a, b, c) = three_vars();
    let nb = m.not(b);
    let f = m.and(a, nb);
    let f = m.and(f, c);
    let lits = m.one_sat(f).unwrap();
    let mut assignment = vec![false; m.var_count()];
    for (v, ph) in lits {
        assignment[v.0 as usize] = ph;
    }
    assert!(m.eval(f, &assignment));
    assert!(m.one_sat(Bdd::FALSE).is_none());
}

#[test]
fn vector_equals_builds_field_conditions() {
    let mut m = BddManager::new();
    let bits: Vec<_> = (0..4).map(|i| m.var(&format!("I[{i}]"))).collect();
    let f5 = m.vector_equals(&bits, 5); // 0101
    assert_eq!(m.sat_count(f5), 1);
    let f3 = m.vector_equals(&bits, 3); // 0011
    let both = m.and(f5, f3);
    assert!(m.is_false(both), "a field cannot be 5 and 3 at once");
}

#[test]
fn assignment_bit_pattern() {
    let mut m = BddManager::new();
    let bits: Vec<_> = (0..4).map(|i| m.var(&format!("I[{i}]"))).collect();
    let f = m.vector_equals(&bits, 0b1010);
    let asg = Assignment::satisfying(&m, f).unwrap();
    assert_eq!(asg.to_bit_pattern(4), "1010");
    assert_eq!(asg.constrained(), 4);
}

#[test]
fn to_cubes_rendering() {
    let (mut m, a, b, _) = three_vars();
    assert_eq!(m.to_cubes(Bdd::FALSE), "0");
    assert_eq!(m.to_cubes(Bdd::TRUE), "1");
    let f = m.and(a, b);
    assert_eq!(m.to_cubes(f), "a&b");
}

#[test]
fn ite_matches_definition() {
    let (mut m, a, b, c) = three_vars();
    let i = m.ite(a, b, c);
    let ab = m.and(a, b);
    let na = m.not(a);
    let nac = m.and(na, c);
    let expect = m.or(ab, nac);
    assert_eq!(i, expect);
}

// ------------------------------------------------------------ frozen/overlay

#[test]
fn frozen_is_send_sync_and_overlay_is_send() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<FrozenBdd>();
    assert_send::<BddOverlay<'_>>();
}

#[test]
fn frozen_preserves_handles_and_queries() {
    let (mut m, a, b, _) = three_vars();
    let ab = m.and(a, b);
    let count = m.node_count();
    let frozen = m.freeze();
    assert_eq!(frozen.node_count(), count);
    assert_eq!(frozen.var_count(), 3);
    assert!(frozen.is_sat(ab));
    assert_eq!(frozen.sat_count(ab), 2); // a&b over 3 vars
    assert_eq!(frozen.to_cubes(ab), "a&b");
    assert_eq!(frozen.var_id_of("a"), Some(crate::VarId(0)));
    assert_eq!(frozen.var_id_of("nope"), None);
    let sup = frozen.support(ab);
    assert_eq!(sup.len(), 2);
}

#[test]
fn overlay_reuses_frozen_nodes() {
    let (mut m, a, b, _) = three_vars();
    let ab = m.and(a, b);
    let frozen = m.freeze();
    let mut s = frozen.overlay();
    // Recreating a function the base owns yields the canonical frozen
    // handle and allocates nothing locally.
    assert_eq!(s.and(a, b), ab);
    assert_eq!(s.local_node_count(), 0);
    // A genuinely new function lands in the session page.
    let c = s.var("c");
    let abc = s.and(ab, c);
    assert!(s.local_node_count() > 0);
    assert!(s.is_sat(abc));
    assert!(s.eval(abc, &[true, true, true]));
    assert!(!s.eval(abc, &[true, true, false]));
}

#[test]
fn overlays_are_isolated_and_deterministic() {
    let (m, a, b, c) = three_vars();
    let frozen = m.freeze();
    let (f1, n1) = {
        let mut s = frozen.overlay();
        let ab = s.and(a, b);
        (s.and(ab, c), s.local_node_count())
    };
    let (f2, n2) = {
        let mut s = frozen.overlay();
        let ab = s.and(a, b);
        (s.and(ab, c), s.local_node_count())
    };
    // Same base, same operations: byte-identical handles and page sizes,
    // regardless of what other overlays did in between.
    assert_eq!(f1, f2);
    assert_eq!(n1, n2);
}

#[test]
fn overlay_registers_new_variables_above_frozen_ones() {
    let (m, _, _, _) = three_vars();
    let frozen = m.freeze();
    let mut s = frozen.overlay();
    // Frozen variables resolve to their frozen ids.
    assert_eq!(s.var_id("a"), crate::VarId(0));
    // New names go above the frozen range, idempotently.
    let d1 = s.var_id("d");
    let d2 = s.var_id("d");
    assert_eq!(d1, d2);
    assert_eq!(d1, crate::VarId(3));
    assert_eq!(s.var_name(d1), "d");
    assert_eq!(s.var_name(crate::VarId(0)), "a");
    assert_eq!(s.var_count(), 4);
    let lit = s.literal(d1, false);
    assert!(s.is_sat(lit));
}

#[test]
fn overlay_vector_equals_matches_manager() {
    let mut m = BddManager::new();
    let bits: Vec<_> = (0..4).map(|i| m.var(&format!("I[{i}]"))).collect();
    let f5 = m.vector_equals(&bits, 5);
    let frozen = m.freeze();
    let mut s = frozen.overlay();
    let again = BddOps::vector_equals(&mut s, &bits, 5);
    assert_eq!(again, f5);
    let f3 = BddOps::vector_equals(&mut s, &bits, 3);
    let both = s.and(f5, f3);
    assert!(s.is_false(both));
}

// ---------------------------------------------------------------------------
// Property tests: BDD operations agree with a brute-force truth-table oracle
// over up to 5 variables.
// ---------------------------------------------------------------------------

/// A tiny Boolean expression AST for the oracle.
#[derive(Debug, Clone)]
enum BExp {
    Var(usize),
    Const(bool),
    Not(Box<BExp>),
    And(Box<BExp>, Box<BExp>),
    Or(Box<BExp>, Box<BExp>),
    Xor(Box<BExp>, Box<BExp>),
}

fn bexp_strategy(nvars: usize) -> impl Strategy<Value = BExp> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(BExp::Var),
        any::<bool>().prop_map(BExp::Const),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| BExp::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BExp::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BExp::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| BExp::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_bexp(e: &BExp, asg: &[bool]) -> bool {
    match e {
        BExp::Var(i) => asg[*i],
        BExp::Const(c) => *c,
        BExp::Not(a) => !eval_bexp(a, asg),
        BExp::And(a, b) => eval_bexp(a, asg) && eval_bexp(b, asg),
        BExp::Or(a, b) => eval_bexp(a, asg) || eval_bexp(b, asg),
        BExp::Xor(a, b) => eval_bexp(a, asg) ^ eval_bexp(b, asg),
    }
}

fn build_bdd(m: &mut BddManager, e: &BExp) -> Bdd {
    match e {
        BExp::Var(i) => m.var(&format!("v{i}")),
        BExp::Const(c) => m.constant(*c),
        BExp::Not(a) => {
            let x = build_bdd(m, a);
            m.not(x)
        }
        BExp::And(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.and(x, y)
        }
        BExp::Or(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.or(x, y)
        }
        BExp::Xor(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.xor(x, y)
        }
    }
}

fn build_bdd_ops<M: BddOps>(m: &mut M, e: &BExp) -> Bdd {
    match e {
        BExp::Var(i) => m.var(&format!("v{i}")),
        BExp::Const(c) => {
            if *c {
                Bdd::TRUE
            } else {
                Bdd::FALSE
            }
        }
        BExp::Not(a) => {
            let x = build_bdd_ops(m, a);
            m.not(x)
        }
        BExp::And(a, b) => {
            let x = build_bdd_ops(m, a);
            let y = build_bdd_ops(m, b);
            m.and(x, y)
        }
        BExp::Or(a, b) => {
            let x = build_bdd_ops(m, a);
            let y = build_bdd_ops(m, b);
            m.or(x, y)
        }
        BExp::Xor(a, b) => {
            let x = build_bdd_ops(m, a);
            let y = build_bdd_ops(m, b);
            m.xor(x, y)
        }
    }
}

const NVARS: usize = 5;

fn fresh_manager() -> BddManager {
    let mut m = BddManager::new();
    for i in 0..NVARS {
        m.var(&format!("v{i}"));
    }
    m
}

proptest! {
    #[test]
    fn bdd_agrees_with_truth_table(e in bexp_strategy(NVARS)) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        for bits in 0u32..(1 << NVARS) {
            let asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(m.eval(f, &asg), eval_bexp(&e, &asg));
        }
    }

    #[test]
    fn sat_count_matches_truth_table(e in bexp_strategy(NVARS)) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        let expected = (0u32..(1 << NVARS))
            .filter(|bits| {
                let asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
                eval_bexp(&e, &asg)
            })
            .count() as u128;
        prop_assert_eq!(m.sat_count(f), expected);
    }

    #[test]
    fn de_morgan(a in bexp_strategy(3), b in bexp_strategy(3)) {
        let mut m = fresh_manager();
        let fa = build_bdd(&mut m, &a);
        let fb = build_bdd(&mut m, &b);
        let ab = m.and(fa, fb);
        let l = m.not(ab);
        let na = m.not(fa);
        let nb = m.not(fb);
        let r = m.or(na, nb);
        prop_assert_eq!(l, r);
    }

    #[test]
    fn double_negation(e in bexp_strategy(4)) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        let nf = m.not(f);
        let nnf = m.not(nf);
        prop_assert_eq!(nnf, f);
    }

    #[test]
    fn one_sat_is_satisfying(e in bexp_strategy(NVARS)) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        if let Some(lits) = m.one_sat(f) {
            let mut asg = vec![false; NVARS];
            for (v, ph) in lits {
                asg[v.0 as usize] = ph;
            }
            prop_assert!(m.eval(f, &asg));
        } else {
            prop_assert_eq!(f, Bdd::FALSE);
        }
    }

    /// An overlay over a frozen base computes exactly what a lone mutable
    /// manager computes, for any split of the work between base and
    /// session: `a` is built (and frozen) in the manager, `b` and the
    /// combination in the overlay.
    #[test]
    fn overlay_agrees_with_manager(a in bexp_strategy(NVARS), b in bexp_strategy(NVARS)) {
        // Oracle: everything in one mutable manager.
        let mut m1 = fresh_manager();
        let fa1 = build_bdd(&mut m1, &a);
        let fb1 = build_bdd(&mut m1, &b);
        let and1 = m1.and(fa1, fb1);
        let or1 = m1.or(fa1, fb1);

        // Split: `a` is retarget-time (frozen), `b` is compile-time.
        let mut m2 = fresh_manager();
        let fa2 = build_bdd(&mut m2, &a);
        let frozen = m2.freeze();
        let mut s = frozen.overlay();
        let fb2 = build_bdd_ops(&mut s, &b);
        let and2 = s.and(fa2, fb2);
        let or2 = s.or(fa2, fb2);

        for bits in 0u32..(1 << NVARS) {
            let asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(s.eval(and2, &asg), m1.eval(and1, &asg));
            prop_assert_eq!(s.eval(or2, &asg), m1.eval(or1, &asg));
            prop_assert_eq!(s.eval(fb2, &asg), m1.eval(fb1, &asg));
        }
        // Satisfiability agrees too (constant-time check used by compaction).
        prop_assert_eq!(s.is_sat(and2), m1.is_sat(and1));
    }

    #[test]
    fn restrict_is_cofactor(e in bexp_strategy(NVARS), var in 0..NVARS, val: bool) {
        let mut m = fresh_manager();
        let f = build_bdd(&mut m, &e);
        let vid = m.var_id(&format!("v{var}"));
        let g = m.restrict(f, vid, val);
        for bits in 0u32..(1 << NVARS) {
            let mut asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            asg[var] = val;
            prop_assert_eq!(m.eval(g, &asg), m.eval(f, &asg));
        }
    }
}

// ---------------------------------------------------------------------------
// Differential tests of the fast-path storage layer (PR 3).
//
// `RefManager` below is a deliberately naive reimplementation of the
// kernel as it existed before the custom tables: `std::collections`
// HashMaps for the unique table and an *unbounded* operation cache, the
// same apply recursion.  Driving random operation sequences through both
// pins the storage refactor's contract: identical truth tables AND
// identical canonical node handles, op by op.
// ---------------------------------------------------------------------------

/// The pre-refactor reference kernel: HashMap unique table, unbounded
/// HashMap op-cache, identical reduction rules.
struct RefManager {
    nodes: Vec<(u32, u32, u32)>, // (var, lo, hi); slots 0/1 are terminals
    unique: std::collections::HashMap<(u32, u32, u32), u32>,
    cache: std::collections::HashMap<(u8, u32, u32), u32>,
    nvars: u32,
}

impl RefManager {
    fn new(nvars: u32) -> RefManager {
        RefManager {
            nodes: vec![(u32::MAX, 0, 0); 2],
            unique: std::collections::HashMap::new(),
            cache: std::collections::HashMap::new(),
            nvars,
        }
    }

    fn literal(&mut self, var: u32) -> u32 {
        assert!(var < self.nvars);
        self.mk(var, 0, 1)
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        let key = (var, lo, hi);
        if let Some(&b) = self.unique.get(&key) {
            return b;
        }
        let b = self.nodes.len() as u32;
        self.nodes.push(key);
        self.unique.insert(key, b);
        b
    }

    fn cofactors(&self, f: u32, var: u32) -> (u32, u32) {
        if f <= 1 {
            return (f, f);
        }
        let (v, lo, hi) = self.nodes[f as usize];
        if v == var {
            (lo, hi)
        } else {
            (f, f)
        }
    }

    fn top_var(&self, a: u32, b: u32) -> u32 {
        let va = if a > 1 {
            self.nodes[a as usize].0
        } else {
            u32::MAX
        };
        let vb = if b > 1 {
            self.nodes[b as usize].0
        } else {
            u32::MAX
        };
        va.min(vb)
    }

    fn and(&mut self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            return 0;
        }
        if a == 1 {
            return b;
        }
        if b == 1 || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.cache.get(&(0, a, b)) {
            return r;
        }
        let v = self.top_var(a, b);
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let lo = self.and(a0, b0);
        let hi = self.and(a1, b1);
        let r = self.mk(v, lo, hi);
        self.cache.insert((0, a, b), r);
        r
    }

    fn or(&mut self, a: u32, b: u32) -> u32 {
        if a == 1 || b == 1 {
            return 1;
        }
        if a == 0 {
            return b;
        }
        if b == 0 || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.cache.get(&(1, a, b)) {
            return r;
        }
        let v = self.top_var(a, b);
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let lo = self.or(a0, b0);
        let hi = self.or(a1, b1);
        let r = self.mk(v, lo, hi);
        self.cache.insert((1, a, b), r);
        r
    }

    fn xor(&mut self, a: u32, b: u32) -> u32 {
        if a == b {
            return 0;
        }
        if a == 0 {
            return b;
        }
        if b == 0 {
            return a;
        }
        if a == 1 {
            return self.not(b);
        }
        if b == 1 {
            return self.not(a);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.cache.get(&(2, a, b)) {
            return r;
        }
        let v = self.top_var(a, b);
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let lo = self.xor(a0, b0);
        let hi = self.xor(a1, b1);
        let r = self.mk(v, lo, hi);
        self.cache.insert((2, a, b), r);
        r
    }

    fn not(&mut self, a: u32) -> u32 {
        if a == 0 {
            return 1;
        }
        if a == 1 {
            return 0;
        }
        if let Some(&r) = self.cache.get(&(3, a, 0)) {
            return r;
        }
        let (v, lo, hi) = self.nodes[a as usize];
        let nlo = self.not(lo);
        let nhi = self.not(hi);
        let r = self.mk(v, nlo, nhi);
        self.cache.insert((3, a, 0), r);
        r
    }

    fn eval(&self, f: u32, asg: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur == 0 {
                return false;
            }
            if cur == 1 {
                return true;
            }
            let (v, lo, hi) = self.nodes[cur as usize];
            cur = if asg[v as usize] { hi } else { lo };
        }
    }
}

/// One step of a random op sequence: an opcode plus operand picks (taken
/// modulo the current pool size, so any u32 is valid).
type RandOp = (u8, u32, u32);

fn apply_seq_ref(m: &mut RefManager, nvars: u32, seq: &[RandOp]) -> Vec<u32> {
    let mut pool: Vec<u32> = (0..nvars).map(|v| m.literal(v)).collect();
    for &(opc, x, y) in seq {
        let a = pool[x as usize % pool.len()];
        let b = pool[y as usize % pool.len()];
        let r = match opc % 4 {
            0 => m.and(a, b),
            1 => m.or(a, b),
            2 => m.xor(a, b),
            _ => m.not(a),
        };
        pool.push(r);
    }
    pool
}

fn apply_seq_fast<M: BddOps>(m: &mut M, nvars: u32, seq: &[RandOp]) -> Vec<Bdd> {
    let mut pool: Vec<Bdd> = (0..nvars).map(|v| m.var(&format!("v{v}"))).collect();
    for &(opc, x, y) in seq {
        let a = pool[x as usize % pool.len()];
        let b = pool[y as usize % pool.len()];
        let r = match opc % 4 {
            0 => m.and(a, b),
            1 => m.or(a, b),
            2 => m.xor(a, b),
            _ => m.not(a),
        };
        pool.push(r);
    }
    pool
}

proptest! {
    /// The custom unique table / lossy op-cache produce exactly the
    /// handles and truth tables of the HashMap reference path, for any
    /// op sequence.
    #[test]
    fn fast_tables_match_reference_path(
        seq in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..48)
    ) {
        let nvars = NVARS as u32;
        let mut reference = RefManager::new(nvars);
        let ref_pool = apply_seq_ref(&mut reference, nvars, &seq);

        let mut fast = fresh_manager();
        let fast_pool = apply_seq_fast(&mut fast, nvars, &seq);

        // Identical canonical handles, op by op: handle i of the fast
        // path is the same node index the reference assigned.
        prop_assert_eq!(ref_pool.len(), fast_pool.len());
        for (r, f) in ref_pool.iter().zip(&fast_pool) {
            prop_assert_eq!(*r, f.0);
        }
        // Identical node stores (count), identical truth tables.
        prop_assert_eq!(reference.nodes.len() - 2, fast.node_count());
        for bits in 0u32..(1 << NVARS) {
            let asg: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            for (r, f) in ref_pool.iter().zip(&fast_pool) {
                prop_assert_eq!(reference.eval(*r, &asg), fast.eval(*f, &asg));
            }
        }
    }

    /// Same contract across the freeze boundary: a session overlay over a
    /// frozen base assigns the very same handles the reference does when
    /// the whole sequence runs in one store.
    #[test]
    fn overlay_tables_match_reference_path(
        split in 0usize..24,
        seq in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..24)
    ) {
        let nvars = NVARS as u32;
        let mut reference = RefManager::new(nvars);
        let ref_pool = apply_seq_ref(&mut reference, nvars, &seq);

        // First `split` ops retarget-time, rest in a session overlay.
        let split = split % (seq.len() + 1);
        let mut m = fresh_manager();
        let pre = apply_seq_fast(&mut m, nvars, &seq[..split]);
        let frozen = m.freeze();
        let mut session = frozen.overlay();
        let mut pool = pre;
        for &(opc, x, y) in &seq[split..] {
            let a = pool[x as usize % pool.len()];
            let b = pool[y as usize % pool.len()];
            let r = match opc % 4 {
                0 => session.and(a, b),
                1 => session.or(a, b),
                2 => session.xor(a, b),
                _ => session.not(a),
            };
            pool.push(r);
        }
        prop_assert_eq!(ref_pool.len(), pool.len());
        for (r, f) in ref_pool.iter().zip(&pool) {
            prop_assert_eq!(*r, f.0);
        }
    }
}

/// The direct-mapped op-cache is lossy by design: a tiny cache must
/// change only the hit rate, never any result handle.
#[test]
fn lossy_op_cache_changes_hit_rate_not_results() {
    let seq: Vec<RandOp> = (0..200u32)
        .map(|i| {
            // A fixed pseudo-random but deterministic op sequence.
            let x = i.wrapping_mul(2654435761);
            ((x >> 7) as u8, x, x.rotate_left(13))
        })
        .collect();
    let nvars = NVARS as u32;

    let mut big = BddManager::new();
    for v in 0..nvars {
        big.var(&format!("v{v}"));
    }
    let big_pool = apply_seq_fast(&mut big, nvars, &seq);

    // Two entries: essentially permanent collision pressure.
    let mut tiny = BddManager::with_op_cache_capacity(2);
    for v in 0..nvars {
        tiny.var(&format!("v{v}"));
    }
    let tiny_pool = apply_seq_fast(&mut tiny, nvars, &seq);

    assert_eq!(big_pool, tiny_pool, "handles must not depend on cache size");
    assert_eq!(big.node_count(), tiny.node_count());

    let (big_hits, _) = big.op_cache_counters();
    let (tiny_hits, tiny_misses) = tiny.op_cache_counters();
    assert!(tiny_hits + tiny_misses > 0, "cache was exercised");
    assert!(
        tiny.op_cache_hit_rate() <= big.op_cache_hit_rate(),
        "tiny cache {} should not out-hit the big one {}",
        tiny.op_cache_hit_rate(),
        big.op_cache_hit_rate()
    );
    assert!(big_hits >= tiny_hits);
}

/// The probe-length counter observes real work: after enough inserts the
/// mean probe length is at least one and stays small at our load factor.
#[test]
fn unique_table_probe_counter_is_sane() {
    let mut m = fresh_manager();
    let seq: Vec<RandOp> = (0..300u32)
        .map(|i| {
            let x = i.wrapping_mul(0x9E3779B9);
            ((x >> 11) as u8, x, x.rotate_right(9))
        })
        .collect();
    apply_seq_fast(&mut m, NVARS as u32, &seq);
    let p = m.unique_avg_probe_len();
    assert!(p >= 1.0, "lookups happened, so probes were counted: {p}");
    assert!(p < 4.0, "linear probing at 3/4 load should stay short: {p}");
}

/// A reset overlay is observationally fresh: replaying the same op
/// sequence after `reset()` yields the exact handles a brand-new overlay
/// assigns, and recycled pages behave the same via `overlay_from`.
#[test]
fn reset_overlay_replays_identical_handles() {
    let mut m = fresh_manager();
    let warm: Vec<RandOp> = (0..60u32)
        .map(|i| {
            let x = i.wrapping_mul(0x85EB_CA6B);
            ((x >> 9) as u8, x, x.rotate_left(7))
        })
        .collect();
    apply_seq_fast(&mut m, NVARS as u32, &warm);
    let frozen = m.freeze();

    let seq: Vec<RandOp> = (0..120u32)
        .map(|i| {
            let x = i.wrapping_mul(0xC2B2_AE35);
            ((x >> 5) as u8, x, x.rotate_right(11))
        })
        .collect();

    let mut fresh = frozen.overlay();
    let expected = apply_seq_fast(&mut fresh, NVARS as u32, &seq);
    let fresh_locals = fresh.local_node_count();

    // Dirty an overlay with a different sequence, reset, then replay.
    let mut reused = frozen.overlay();
    apply_seq_fast(&mut reused, NVARS as u32, &warm);
    reused.var("late-session-var");
    reused.reset();
    assert_eq!(reused.local_node_count(), 0);
    let replayed = apply_seq_fast(&mut reused, NVARS as u32, &seq);
    assert_eq!(replayed, expected, "reset overlay must replay identically");
    assert_eq!(reused.local_node_count(), fresh_locals);

    // Pages survive a round-trip through the lifetime-free form.
    let pages = reused.into_pages();
    let mut recycled = frozen.overlay_from(pages);
    let again = apply_seq_fast(&mut recycled, NVARS as u32, &seq);
    assert_eq!(again, expected, "recycled pages must replay identically");
    assert_eq!(recycled.local_node_count(), fresh_locals);
}
