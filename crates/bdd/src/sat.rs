//! Assignment utilities shared by instruction encoding and compaction.

use crate::{Bdd, BddManager, VarId};

/// A partial assignment of Boolean variables, used to materialise a binary
/// partial instruction from an RT template's execution condition.
///
/// # Example
///
/// ```
/// use record_bdd::{BddManager, Assignment};
/// let mut m = BddManager::new();
/// let a = m.var("a");
/// let b = m.var("b");
/// let f = m.and(a, b);
/// let asg = Assignment::satisfying(&m, f).expect("f is satisfiable");
/// assert_eq!(asg.get(m.var_id("a")), Some(true));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<Option<bool>>,
}

impl Assignment {
    /// An empty assignment (all variables unconstrained).
    pub fn new() -> Self {
        Assignment { values: Vec::new() }
    }

    /// Extracts one satisfying assignment of `f`, or `None` if `f` is
    /// unsatisfiable.
    pub fn satisfying(manager: &BddManager, f: Bdd) -> Option<Assignment> {
        let lits = manager.one_sat(f)?;
        let mut asg = Assignment::new();
        for (var, phase) in lits {
            asg.set(var, phase);
        }
        Some(asg)
    }

    /// Value of `var`, or `None` if unconstrained.
    pub fn get(&self, var: VarId) -> Option<bool> {
        self.values.get(var.0 as usize).copied().flatten()
    }

    /// Fixes `var` to `value`.
    pub fn set(&mut self, var: VarId, value: bool) {
        let idx = var.0 as usize;
        if self.values.len() <= idx {
            self.values.resize(idx + 1, None);
        }
        self.values[idx] = Some(value);
    }

    /// Number of constrained variables.
    pub fn constrained(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Renders the assignment as an instruction-word bit pattern of `width`
    /// bits where unconstrained bits show as `x`.  Bit `width - 1` is
    /// leftmost.  Variables beyond `width` (mode bits) are ignored.
    pub fn to_bit_pattern(&self, width: usize) -> String {
        (0..width)
            .rev()
            .map(|i| match self.values.get(i).copied().flatten() {
                Some(true) => '1',
                Some(false) => '0',
                None => 'x',
            })
            .collect()
    }
}

impl FromIterator<(VarId, bool)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (VarId, bool)>>(iter: I) -> Self {
        let mut asg = Assignment::new();
        for (v, ph) in iter {
            asg.set(v, ph);
        }
        asg
    }
}
