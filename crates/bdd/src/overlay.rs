//! The frozen node store and per-session overlay arenas.
//!
//! Retargeting builds every execution condition once, in a mutable
//! [`BddManager`].  Compilation then *combines* those conditions over and
//! over — emission conjoins instruction-field constraints, compaction
//! conjoins word conditions — and each conjunction may create new nodes.
//! If the manager stayed shared, every compile would have to lock or own
//! it, serialising a workload that is conceptually read-only.
//!
//! [`FrozenBdd`] is the immutable snapshot: the complete node store, unique
//! table and operation cache of the retarget-time manager, shareable across
//! threads (`Send + Sync`).  [`BddOverlay`] is the per-compilation scratch
//! arena layered on top: new nodes land in session-local pages addressed
//! *above* the frozen range, so every frozen handle keeps its meaning and
//! two sessions never observe each other.  Because the overlay consults the
//! frozen unique table before allocating, a session that recreates a
//! function already known to the base gets the canonical frozen handle
//! back — canonicity (equal handles ⇔ equal functions) holds across the
//! boundary for any *one* overlay combined with its base.

use crate::manager::{Apply, BddManager, BddOps, Node, OpKey};
use crate::symbol::SymbolInterner;
use crate::table::{OpCache, UniqueTable, OVERLAY_OP_CACHE};
use crate::{Bdd, VarId};

/// An immutable, `Send + Sync` snapshot of a [`BddManager`].
///
/// Produced by [`BddManager::freeze`]; all handles created before the
/// freeze remain valid.  Read-only queries (satisfiability, evaluation,
/// support, rendering) are available directly; node-creating operations
/// require a per-session [`BddOverlay`] from [`FrozenBdd::overlay`].
#[derive(Debug, Clone)]
pub struct FrozenBdd {
    inner: BddManager,
}

impl FrozenBdd {
    pub(crate) fn new(inner: BddManager) -> FrozenBdd {
        FrozenBdd { inner }
    }

    /// Opens a session-local overlay arena on top of this store.
    ///
    /// Opening is allocation-free: the local node page, unique table,
    /// op-cache and name interner all materialise on first use, so
    /// spinning up a batch of sessions costs nothing until they create
    /// nodes.
    pub fn overlay(&self) -> BddOverlay<'_> {
        BddOverlay {
            base: self,
            nodes: Vec::new(),
            unique: UniqueTable::default(),
            cache: OpCache::new(OVERLAY_OP_CACHE),
            interner: SymbolInterner::new(),
        }
    }

    /// Re-opens an overlay from pages returned by
    /// [`BddOverlay::into_pages`], keeping their allocations warm.
    ///
    /// The pages carry no handles, so they may come from an overlay of a
    /// *different* frozen base — only the capacity is reused.
    pub fn overlay_from(&self, pages: OverlayPages) -> BddOverlay<'_> {
        BddOverlay {
            base: self,
            nodes: pages.nodes,
            unique: pages.unique,
            cache: pages.cache,
            interner: pages.interner,
        }
    }

    /// Fraction of op-cache lookups the retarget-time manager answered
    /// from cache before freezing.
    pub fn op_cache_hit_rate(&self) -> f64 {
        self.inner.op_cache_hit_rate()
    }

    /// Mean unique-table probe-chain length recorded before freezing.
    pub fn unique_avg_probe_len(&self) -> f64 {
        self.inner.unique_avg_probe_len()
    }

    /// Counter snapshot taken at freeze time (frozen counters no longer
    /// move; overlays account their own work separately).
    pub fn counters(&self) -> crate::BddCounters {
        self.inner.counters()
    }

    /// Number of frozen internal nodes, excluding terminals.
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// Number of registered variables.
    pub fn var_count(&self) -> usize {
        self.inner.var_count()
    }

    /// Name of a registered variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by the frozen manager.
    pub fn var_name(&self, id: VarId) -> &str {
        self.inner.var_name(id)
    }

    /// Looks up a variable id by name, if registered before the freeze.
    pub fn var_id_of(&self, name: &str) -> Option<VarId> {
        self.inner.interner.lookup(name).map(|s| VarId(s.0))
    }

    /// Is `f` the constant-false function (i.e. unsatisfiable)?
    pub fn is_false(&self, f: Bdd) -> bool {
        self.inner.is_false(f)
    }

    /// Is `f` the constant-true function (i.e. a tautology)?
    pub fn is_true(&self, f: Bdd) -> bool {
        self.inner.is_true(f)
    }

    /// Is `f` satisfiable?
    pub fn is_sat(&self, f: Bdd) -> bool {
        self.inner.is_sat(f)
    }

    /// Evaluates `f` under a total assignment (missing variables default
    /// to `false`).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        self.inner.eval(f, assignment)
    }

    /// Number of satisfying assignments of `f` over all registered
    /// variables.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        self.inner.sat_count(f)
    }

    /// The set of variables `f` depends on, in ascending order.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        self.inner.support(f)
    }

    /// One satisfying partial assignment of `f`, or `None` if
    /// unsatisfiable.
    pub fn one_sat(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        self.inner.one_sat(f)
    }

    /// Renders `f` as a sum-of-products string using variable names.
    pub fn to_cubes(&self, f: Bdd) -> String {
        self.inner.to_cubes(f)
    }

    /// Clones the frozen state back into a mutable manager (escape hatch
    /// for tooling that needs to keep extending a retargeted model).
    pub fn thaw(&self) -> BddManager {
        self.inner.clone()
    }
}

/// The lifetime-free storage of a reset [`BddOverlay`]: emptied pages
/// whose allocations stay warm for the next session.
///
/// Produced by [`BddOverlay::into_pages`] and turned back into an overlay
/// by [`FrozenBdd::overlay_from`].  Holding pages instead of overlays is
/// what lets a session pool own recycled arenas without borrowing the
/// frozen base.
#[derive(Debug, Default)]
pub struct OverlayPages {
    nodes: Vec<Node>,
    unique: UniqueTable,
    cache: OpCache,
    interner: SymbolInterner,
}

/// A per-session mutable arena over a shared [`FrozenBdd`].
///
/// New nodes, operation-cache entries and late-registered variables live in
/// session-local pages; the frozen base is only ever read.  Handles
/// returned by an overlay are meaningful to that overlay (and, when they
/// fall in the frozen range, to the base and every other overlay of it).
///
/// # Example
///
/// ```
/// use record_bdd::{BddManager, BddOps};
///
/// let mut m = BddManager::new();
/// let x = m.var("x");
/// let y = m.var("y");
/// let frozen = m.freeze();
///
/// let mut session = frozen.overlay();
/// let f = session.and(x, y);
/// assert!(session.is_sat(f));
/// // A second session starts from the same base, unaffected.
/// let mut other = frozen.overlay();
/// assert_eq!(other.and(x, y), f); // deterministic handles
/// ```
#[derive(Debug)]
pub struct BddOverlay<'a> {
    base: &'a FrozenBdd,
    /// Session-local node page; global index = frozen length + local index.
    nodes: Vec<Node>,
    /// Unique table over the local page; slots hold *local* indices.
    unique: UniqueTable,
    /// Session-local lossy op-cache (results may reference both frozen and
    /// local handles, which is safe because they are only consulted by
    /// this session).
    cache: OpCache,
    /// Session-local variable names; global id = frozen count + local.
    interner: SymbolInterner,
}

impl<'a> BddOverlay<'a> {
    /// The frozen base this overlay extends.
    pub fn base(&self) -> &'a FrozenBdd {
        self.base
    }

    /// Nodes created by this session (excluding the frozen base).
    pub fn local_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total nodes visible to the session, excluding terminals.
    pub fn node_count(&self) -> usize {
        self.base.node_count() + self.nodes.len()
    }

    /// Total registered variables (frozen + session-local).
    pub fn var_count(&self) -> usize {
        self.base.var_count() + self.interner.len()
    }

    /// Fraction of this session's op-cache lookups served from cache
    /// (frozen-base hits count as session hits).
    pub fn op_cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// `(hits, misses)` of this session's op-cache lookups.
    pub fn op_cache_counters(&self) -> (u64, u64) {
        self.cache.counters()
    }

    /// Snapshot of this session's own counters: nodes it allocated and
    /// lookups it performed, excluding everything frozen in the base.
    pub fn counters(&self) -> crate::BddCounters {
        let (op_hits, op_misses) = self.cache.counters();
        let (unique_probes, unique_lookups) = self.unique.probe_counters();
        crate::BddCounters {
            nodes: self.local_node_count() as u64,
            op_hits,
            op_misses,
            unique_probes,
            unique_lookups,
        }
    }

    /// Mean probe-chain length of this session's local unique-table
    /// lookups.
    pub fn unique_avg_probe_len(&self) -> f64 {
        self.unique.avg_probe_len()
    }

    /// Name of a registered variable (frozen or session-local).
    ///
    /// # Panics
    ///
    /// Panics if `id` belongs to neither.
    pub fn var_name(&self, id: VarId) -> &str {
        let frozen = self.base.var_count() as u32;
        if id.0 < frozen {
            self.base.var_name(id)
        } else {
            self.interner.resolve(crate::Symbol(id.0 - frozen))
        }
    }

    fn frozen_len(&self) -> usize {
        self.base.inner.nodes.len()
    }

    fn node(&self, f: Bdd) -> Node {
        let i = f.index();
        let frozen = self.frozen_len();
        if i < frozen {
            self.base.inner.nodes[i]
        } else {
            self.nodes[i - frozen]
        }
    }

    /// Rolls the overlay back to the frozen boundary: every session-local
    /// node, cache line and late-registered variable is dropped, but the
    /// pages keep their allocations so the next compilation on this arena
    /// skips the warm-up.  Frozen handles remain valid; handles above the
    /// boundary must not be used again.
    ///
    /// Because hash-consing is deterministic and the cleared tables are
    /// contents-equal to fresh ones, a reset overlay assigns *identical*
    /// handles to an identical operation sequence — pooled sessions are
    /// observationally fresh (the cumulative perf counters are the only
    /// thing that persists).
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.unique.clear();
        self.cache.clear();
        self.interner.clear();
    }

    /// Resets the overlay and releases its pages for reuse against any
    /// frozen base (see [`OverlayPages`]).
    pub fn into_pages(mut self) -> OverlayPages {
        self.reset();
        OverlayPages {
            nodes: self.nodes,
            unique: self.unique,
            cache: self.cache,
            interner: self.interner,
        }
    }

    /// Evaluates `f` under a total assignment (missing variables default
    /// to `false`).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur == Bdd::FALSE {
                return false;
            }
            if cur == Bdd::TRUE {
                return true;
            }
            let n = self.node(cur);
            let v = assignment.get(n.var.0 as usize).copied().unwrap_or(false);
            cur = if v { n.hi } else { n.lo };
        }
    }
}

/// Storage primitives for the shared apply recursion: reads dispatch to
/// the frozen base or the local page by index; writes always go local.
impl Apply for BddOverlay<'_> {
    fn node_of(&self, f: Bdd) -> Node {
        self.node(f)
    }

    /// Cache lookup: frozen results first (they only mention frozen
    /// handles and stay valid forever), then the session page.
    fn cached(&mut self, key: OpKey) -> Option<Bdd> {
        if let Some(r) = self.base.inner.cache.probe(key) {
            self.cache.count_hit();
            return Some(r);
        }
        self.cache.lookup(key)
    }

    fn cache_insert(&mut self, key: OpKey, r: Bdd) {
        self.cache.insert(key, r);
    }

    /// Hash-consing with cross-boundary canonicity: a function the frozen
    /// base already owns must resolve to the frozen handle.
    fn mk_node(&mut self, var: VarId, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(b) = self.base.inner.unique.probe(&node, &self.base.inner.nodes) {
            return b;
        }
        // The local table stores *local* page indices; translate to and
        // from global handles at the boundary.
        let frozen = self.frozen_len() as u32;
        if let Some(local) = self.unique.get(&node, &self.nodes) {
            return Bdd(frozen + local.0);
        }
        let local = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(local, &self.nodes);
        Bdd(frozen + local.0)
    }
}

impl BddOps for BddOverlay<'_> {
    fn var(&mut self, name: &str) -> Bdd {
        let id = BddOps::var_id(self, name);
        BddOps::literal(self, id, true)
    }

    fn var_id(&mut self, name: &str) -> VarId {
        if let Some(id) = self.base.var_id_of(name) {
            return id;
        }
        let sym = self.interner.intern(name);
        VarId(self.base.var_count() as u32 + sym.0)
    }

    fn literal(&mut self, id: VarId, phase: bool) -> Bdd {
        assert!(
            (id.0 as usize) < self.base.var_count() + self.interner.len(),
            "literal of unregistered variable {id:?}"
        );
        if phase {
            self.mk_node(id, Bdd::FALSE, Bdd::TRUE)
        } else {
            self.mk_node(id, Bdd::TRUE, Bdd::FALSE)
        }
    }

    fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.and_rec(a, b)
    }

    fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.or_rec(a, b)
    }

    fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.xor_rec(a, b)
    }

    fn not(&mut self, a: Bdd) -> Bdd {
        self.not_rec(a)
    }
}
