//! Interned variable names.
//!
//! Variable names are strings at the API boundary ("I[3]", "mode.st[0]")
//! but the kernel only ever needs them for registration — once a variable
//! exists, every hot-path comparison is on its index.  The interner maps
//! each distinct name to a dense [`Symbol`] exactly once; after that,
//! looking a name up is an FxHash probe and everything downstream compares
//! `u32`s.  A symbol's index *is* the BDD variable index
//! ([`crate::VarId`]) because variables are registered in interning order.

use crate::table::hash_str;

/// A dense handle for an interned variable name.
///
/// Symbols are assigned in interning order, so for BDD variables the
/// symbol index equals the [`crate::VarId`] index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

const EMPTY: u32 = u32::MAX;

/// A string interner over an open-addressing index (power-of-two capacity,
/// FxHash, insert-only — the same recipe as the unique table).
#[derive(Debug, Clone, Default)]
pub struct SymbolInterner {
    names: Vec<String>,
    /// Slot array holding indices into `names` (`EMPTY` = vacant).
    slots: Vec<u32>,
}

impl SymbolInterner {
    /// An empty interner.
    pub fn new() -> SymbolInterner {
        SymbolInterner::default()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The symbol of `name`, if already interned.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash_str(name) as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                return None;
            }
            if self.names[slot as usize] == name {
                return Some(Symbol(slot));
            }
            i = (i + 1) & mask;
        }
    }

    /// Interns `name`, returning its (existing or fresh) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(s) = self.lookup(name) {
            return s;
        }
        if (self.names.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        let mask = self.slots.len() - 1;
        let mut i = (hash_str(name) as usize) & mask;
        while self.slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = id;
        Symbol(id)
    }

    /// Forgets every interned name while keeping the slot allocation
    /// (used when a session overlay is reset for reuse).
    pub fn clear(&mut self) {
        self.names.clear();
        self.slots.fill(EMPTY);
    }

    /// The name behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` was not produced by this interner.
    pub fn resolve(&self, symbol: Symbol) -> &str {
        &self.names[symbol.0 as usize]
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(64);
        let mask = cap - 1;
        let mut slots = vec![EMPTY; cap];
        for (id, name) in self.names.iter().enumerate() {
            let mut i = (hash_str(name) as usize) & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = id as u32;
        }
        self.slots = slots;
    }
}
