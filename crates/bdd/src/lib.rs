//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! This crate implements the Boolean back-end used by the `record`
//! retargetable compiler.  Execution conditions of register-transfer (RT)
//! templates are Boolean functions over *instruction-word bits* and *mode
//! register bits* (paper §2, "Analysis of control signals").  Instruction-set
//! extraction conjoins many small conditions while tracing control signals
//! through decoder logic, and code compaction tests whether two RTs may share
//! one instruction word by checking satisfiability of the conjunction of
//! their conditions.  Both uses need cheap `and`/`not` plus a constant-time
//! unsatisfiability check, which is exactly what hash-consed ROBDDs give us.
//!
//! The crate separates the *retarget-time* mutable store from *compile-time*
//! scratch: [`BddManager`] owns nodes while the instruction set is being
//! extracted, [`BddManager::freeze`] turns it into an immutable, shareable
//! [`FrozenBdd`], and each compilation session layers a private
//! [`BddOverlay`] arena on top for the nodes its conjunctions create.  Code
//! that only combines conditions is generic over [`BddOps`], implemented by
//! both the manager and the overlay.
//!
//! # Example
//!
//! ```
//! use record_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let i0 = m.var("I[0]");
//! let i1 = m.var("I[1]");
//! let a = m.and(i0, i1);
//! let na = m.not(a);
//! let contradiction = m.and(a, na);
//! assert!(m.is_false(contradiction));
//! ```

mod manager;
mod overlay;
mod sat;
mod symbol;
mod table;

pub use manager::{Bdd, BddCounters, BddManager, BddOps, VarId};
pub use overlay::{BddOverlay, FrozenBdd, OverlayPages};
pub use sat::Assignment;
pub use symbol::{Symbol, SymbolInterner};

#[cfg(test)]
mod tests;
