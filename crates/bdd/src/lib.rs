//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! This crate implements the Boolean back-end used by the `record`
//! retargetable compiler.  Execution conditions of register-transfer (RT)
//! templates are Boolean functions over *instruction-word bits* and *mode
//! register bits* (paper §2, "Analysis of control signals").  Instruction-set
//! extraction conjoins many small conditions while tracing control signals
//! through decoder logic, and code compaction tests whether two RTs may share
//! one instruction word by checking satisfiability of the conjunction of
//! their conditions.  Both uses need cheap `and`/`not` plus a constant-time
//! unsatisfiability check, which is exactly what hash-consed ROBDDs give us.
//!
//! # Example
//!
//! ```
//! use record_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let i0 = m.var("I[0]");
//! let i1 = m.var("I[1]");
//! let a = m.and(i0, i1);
//! let na = m.not(a);
//! let contradiction = m.and(a, na);
//! assert!(m.is_false(contradiction));
//! ```

mod manager;
mod sat;

pub use manager::{Bdd, BddManager, VarId};
pub use sat::Assignment;

#[cfg(test)]
mod tests;
