//! The BDD node store and Boolean operations.

use crate::symbol::{Symbol, SymbolInterner};
use crate::table::{OpCache, UniqueTable, MANAGER_OP_CACHE};
use std::collections::HashMap;
use std::fmt;

/// Index of a Boolean variable inside a [`BddManager`].
///
/// Variables are ordered by creation; the ordering is also the BDD variable
/// order.  In `record`, instruction-word bits are registered first (so they
/// sit at the top of every diagram) followed by mode-register bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// A handle to a BDD node owned by some [`BddManager`].
///
/// Handles are plain indices: they are `Copy`, cheap to store in the many
/// thousands of RT templates produced by instruction-set extraction, and two
/// handles from the same manager represent the same Boolean function if and
/// only if they are equal (canonicity of ROBDDs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub(crate) var: VarId,
    pub(crate) lo: Bdd,
    pub(crate) hi: Bdd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum OpKey {
    And(Bdd, Bdd),
    Or(Bdd, Bdd),
    Xor(Bdd, Bdd),
    Not(Bdd),
}

/// Owner of all BDD nodes, the unique table and the operation caches.
///
/// All operations that may create nodes take `&mut self`; handles returned by
/// one manager must not be used with another (doing so yields wrong answers,
/// not undefined behaviour).
///
/// # Example
///
/// ```
/// use record_bdd::BddManager;
/// let mut m = BddManager::new();
/// let x = m.var("x");
/// let y = m.var("y");
/// let f = m.or(x, y);
/// assert!(m.is_sat(f));
/// assert_eq!(m.sat_count(f), 3); // 3 of the 4 assignments satisfy x|y
/// ```
#[derive(Debug, Clone)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: UniqueTable,
    pub(crate) cache: OpCache,
    pub(crate) interner: SymbolInterner,
}

/// A point-in-time snapshot of the kernel's machine-independent work
/// counters.  Counters only grow, so the cost of a region of work is
/// `after.delta(&before)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddCounters {
    /// Live internal nodes (excluding terminals).
    pub nodes: u64,
    /// Op-cache lookups answered from the cache.
    pub op_hits: u64,
    /// Op-cache lookups that had to recompute.
    pub op_misses: u64,
    /// Probe steps taken across all unique-table lookups.
    pub unique_probes: u64,
    /// Unique-table lookups performed.
    pub unique_lookups: u64,
}

impl BddCounters {
    /// Counter growth since `earlier` (saturating, so a snapshot from a
    /// different manager cannot underflow).
    pub fn delta(&self, earlier: &BddCounters) -> BddCounters {
        BddCounters {
            nodes: self.nodes.saturating_sub(earlier.nodes),
            op_hits: self.op_hits.saturating_sub(earlier.op_hits),
            op_misses: self.op_misses.saturating_sub(earlier.op_misses),
            unique_probes: self.unique_probes.saturating_sub(earlier.unique_probes),
            unique_lookups: self.unique_lookups.saturating_sub(earlier.unique_lookups),
        }
    }

    /// Fraction of op-cache lookups answered from the cache.
    pub fn op_cache_hit_rate(&self) -> f64 {
        let total = self.op_hits + self.op_misses;
        if total == 0 {
            0.0
        } else {
            self.op_hits as f64 / total as f64
        }
    }

    /// Mean unique-table probe-chain length (1.0 = every lookup hit its
    /// home slot).
    pub fn unique_avg_probe_len(&self) -> f64 {
        if self.unique_lookups == 0 {
            0.0
        } else {
            self.unique_probes as f64 / self.unique_lookups as f64
        }
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the two terminal nodes.
    pub fn new() -> Self {
        Self::with_op_cache_capacity(MANAGER_OP_CACHE)
    }

    /// Creates an empty manager whose direct-mapped op-cache holds
    /// `capacity` entries (rounded up to a power of two).
    ///
    /// The cache is lossy, so capacity affects only speed, never results —
    /// a property the test suite pins.  [`BddManager::new`] picks a
    /// retarget-scale default.
    pub fn with_op_cache_capacity(capacity: usize) -> Self {
        // Slots 0 and 1 are the terminals; their `Node` payloads are dummies
        // that are never looked at (every accessor checks for terminals
        // first), they only keep indices aligned.
        let dummy = Node {
            var: VarId(u32::MAX),
            lo: Bdd::FALSE,
            hi: Bdd::FALSE,
        };
        BddManager {
            nodes: vec![dummy, dummy],
            unique: UniqueTable::default(),
            cache: OpCache::new(capacity),
            interner: SymbolInterner::new(),
        }
    }

    /// Fraction of op-cache lookups answered from the cache so far.
    pub fn op_cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// `(hits, misses)` of the operation cache.
    pub fn op_cache_counters(&self) -> (u64, u64) {
        self.cache.counters()
    }

    /// Snapshot of all kernel counters at this instant.
    pub fn counters(&self) -> BddCounters {
        let (op_hits, op_misses) = self.cache.counters();
        let (unique_probes, unique_lookups) = self.unique.probe_counters();
        BddCounters {
            nodes: self.node_count() as u64,
            op_hits,
            op_misses,
            unique_probes,
            unique_lookups,
        }
    }

    /// Mean probe-chain length of unique-table lookups (1.0 = every lookup
    /// hit its home slot).
    pub fn unique_avg_probe_len(&self) -> f64 {
        self.unique.avg_probe_len()
    }

    /// Number of live (hash-consed) internal nodes, excluding terminals.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 2
    }

    /// Number of registered variables.
    pub fn var_count(&self) -> usize {
        self.interner.len()
    }

    /// Returns the function of a single variable, registering `name` on
    /// first use.  Calling `var` twice with the same name returns the same
    /// function.
    pub fn var(&mut self, name: &str) -> Bdd {
        let id = self.var_id(name);
        self.literal(id, true)
    }

    /// Registers (or looks up) a variable by name and returns its id.
    ///
    /// Variables are registered in interning order, so the returned id's
    /// index equals the name's [`Symbol`] index.
    pub fn var_id(&mut self, name: &str) -> VarId {
        VarId(self.interner.intern(name).0)
    }

    /// Name of a registered variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this manager.
    pub fn var_name(&self, id: VarId) -> &str {
        self.interner.resolve(Symbol(id.0))
    }

    /// The positive (`phase = true`) or negative literal of `id`.
    pub fn literal(&mut self, id: VarId, phase: bool) -> Bdd {
        assert!(
            (id.0 as usize) < self.interner.len(),
            "literal of unregistered variable {id:?}"
        );
        if phase {
            self.mk(id, Bdd::FALSE, Bdd::TRUE)
        } else {
            self.mk(id, Bdd::TRUE, Bdd::FALSE)
        }
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Is `f` the constant-false function (i.e. unsatisfiable)?
    pub fn is_false(&self, f: Bdd) -> bool {
        f == Bdd::FALSE
    }

    /// Is `f` the constant-true function (i.e. a tautology)?
    pub fn is_true(&self, f: Bdd) -> bool {
        f == Bdd::TRUE
    }

    /// Is `f` satisfiable?
    pub fn is_sat(&self, f: Bdd) -> bool {
        f != Bdd::FALSE
    }

    fn mk(&mut self, var: VarId, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(b) = self.unique.get(&node, &self.nodes) {
            return b;
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(b, &self.nodes);
        b
    }

    /// Conjunction `a && b`.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        Apply::and_rec(self, a, b)
    }

    /// Disjunction `a || b`.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        Apply::or_rec(self, a, b)
    }

    /// Exclusive or `a ^ b`.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        Apply::xor_rec(self, a, b)
    }

    /// Negation `!a`.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        Apply::not_rec(self, a)
    }

    /// Logical equivalence `a <-> b`.
    pub fn iff(&mut self, a: Bdd, b: Bdd) -> Bdd {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: Bdd, b: Bdd) -> Bdd {
        let na = self.not(a);
        self.or(na, b)
    }

    /// If-then-else `c ? t : e`.
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let ce = self.and(nc, e);
        self.or(ct, ce)
    }

    /// Restricts `f` by fixing `var` to `value` (Shannon cofactor).
    pub fn restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        if f == Bdd::FALSE || f == Bdd::TRUE {
            return f;
        }
        let n = self.nodes[f.index()];
        if n.var > var {
            // `var` does not occur in `f` (ordering!).
            return f;
        }
        if n.var == var {
            return if value { n.hi } else { n.lo };
        }
        let lo = self.restrict(n.lo, var, value);
        let hi = self.restrict(n.hi, var, value);
        self.mk(n.var, lo, hi)
    }

    /// Existential quantification of `var` in `f`.
    pub fn exists(&mut self, f: Bdd, var: VarId) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.or(f0, f1)
    }

    /// Evaluates `f` under a total assignment (`assignment[i]` is the value
    /// of variable `i`; missing variables default to `false`).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur == Bdd::FALSE {
                return false;
            }
            if cur == Bdd::TRUE {
                return true;
            }
            let n = self.nodes[cur.index()];
            let v = assignment.get(n.var.0 as usize).copied().unwrap_or(false);
            cur = if v { n.hi } else { n.lo };
        }
    }

    /// Number of satisfying assignments of `f` over all registered
    /// variables.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let nvars = self.interner.len() as u32;
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        self.sat_count_rec(f, 0, nvars, &mut memo)
    }

    fn sat_count_rec(&self, f: Bdd, from: u32, nvars: u32, memo: &mut HashMap<Bdd, u128>) -> u128 {
        if f == Bdd::FALSE {
            return 0;
        }
        if f == Bdd::TRUE {
            return 1u128 << (nvars - from);
        }
        let n = self.nodes[f.index()];
        let key = f;
        let below = if let Some(&c) = memo.get(&key) {
            c
        } else {
            let lo = self.sat_count_rec(n.lo, n.var.0 + 1, nvars, memo);
            let hi = self.sat_count_rec(n.hi, n.var.0 + 1, nvars, memo);
            let c = lo + hi;
            memo.insert(key, c);
            c
        };
        // Account for the skipped variables between `from` and the top var.
        below << (n.var.0 - from)
    }

    /// The set of variables `f` depends on, in ascending order.
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut seen = std::collections::BTreeSet::new();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b == Bdd::FALSE || b == Bdd::TRUE || !visited.insert(b) {
                continue;
            }
            let n = self.nodes[b.index()];
            seen.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.into_iter().collect()
    }

    /// Returns one satisfying partial assignment of `f` (variables not
    /// mentioned may take any value), or `None` if `f` is unsatisfiable.
    pub fn one_sat(&self, f: Bdd) -> Option<Vec<(VarId, bool)>> {
        if f == Bdd::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while cur != Bdd::TRUE {
            let n = self.nodes[cur.index()];
            if n.hi != Bdd::FALSE {
                path.push((n.var, true));
                cur = n.hi;
            } else {
                path.push((n.var, false));
                cur = n.lo;
            }
        }
        Some(path)
    }

    /// Renders `f` as a sum-of-products string using variable names, mainly
    /// for diagnostics and golden tests.  The constant functions render as
    /// `"0"` and `"1"`.
    pub fn to_cubes(&self, f: Bdd) -> String {
        if f == Bdd::FALSE {
            return "0".to_owned();
        }
        if f == Bdd::TRUE {
            return "1".to_owned();
        }
        let mut cubes = Vec::new();
        let mut lits: Vec<(VarId, bool)> = Vec::new();
        self.cubes_rec(f, &mut lits, &mut cubes);
        cubes.join(" | ")
    }

    fn cubes_rec(&self, f: Bdd, lits: &mut Vec<(VarId, bool)>, out: &mut Vec<String>) {
        if f == Bdd::FALSE {
            return;
        }
        if f == Bdd::TRUE {
            let cube = lits
                .iter()
                .map(|&(v, ph)| {
                    if ph {
                        self.var_name(v).to_owned()
                    } else {
                        format!("!{}", self.var_name(v))
                    }
                })
                .collect::<Vec<_>>()
                .join("&");
            out.push(if cube.is_empty() { "1".into() } else { cube });
            return;
        }
        let n = self.nodes[f.index()];
        lits.push((n.var, false));
        self.cubes_rec(n.lo, lits, out);
        lits.pop();
        lits.push((n.var, true));
        self.cubes_rec(n.hi, lits, out);
        lits.pop();
    }

    /// Builds the condition "the bit-vector `bits` equals `value`", i.e.
    /// the conjunction over all bit positions of `bits[i] <-> value_i`.
    ///
    /// `bits[0]` is the least significant bit.  The algorithm lives in the
    /// [`BddOps`] default so manager and overlay can never diverge.
    pub fn vector_equals(&mut self, bits: &[Bdd], value: u64) -> Bdd {
        BddOps::vector_equals(self, bits, value)
    }

    /// Freezes this manager into an immutable, shareable node store.
    ///
    /// Every handle handed out so far stays valid against the frozen store;
    /// new nodes can only be created through per-session
    /// [`BddOverlay`](crate::BddOverlay)s layered on top of it.
    pub fn freeze(self) -> crate::FrozenBdd {
        crate::FrozenBdd::new(self)
    }
}

/// The shared apply recursion behind `and`/`or`/`xor`/`not`.
///
/// [`BddManager`] and [`crate::BddOverlay`] differ only in where nodes and
/// cache entries are *stored* (one flat store vs frozen-base-plus-local
/// pages); the reduction algorithm itself must be byte-identical in both,
/// or an overlay would stop producing the canonical handles its
/// unique-table lookups assume.  It therefore exists exactly once, as
/// default methods over the four storage primitives.
pub(crate) trait Apply {
    /// The node behind a non-terminal handle.
    fn node_of(&self, f: Bdd) -> Node;
    /// Operation-cache lookup (`&mut` so implementations can keep hit-rate
    /// counters in plain fields; every caller holds `&mut` anyway).
    fn cached(&mut self, key: OpKey) -> Option<Bdd>;
    /// Operation-cache insert.
    fn cache_insert(&mut self, key: OpKey, r: Bdd);
    /// Hash-consing node constructor.
    fn mk_node(&mut self, var: VarId, lo: Bdd, hi: Bdd) -> Bdd;

    /// Shannon cofactors of `f` with respect to `var` (assumes `var` is
    /// at or above the top variable of `f`).
    fn cofactors_of(&self, f: Bdd, var: VarId) -> (Bdd, Bdd) {
        if f == Bdd::FALSE || f == Bdd::TRUE {
            return (f, f);
        }
        let n = self.node_of(f);
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    fn and_rec(&mut self, a: Bdd, b: Bdd) -> Bdd {
        // Terminal cases.
        if a == Bdd::FALSE || b == Bdd::FALSE {
            return Bdd::FALSE;
        }
        if a == Bdd::TRUE {
            return b;
        }
        if b == Bdd::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(r) = self.cached(OpKey::And(a, b)) {
            return r;
        }
        let v = self.node_of(a).var.min(self.node_of(b).var);
        let (a0, a1) = self.cofactors_of(a, v);
        let (b0, b1) = self.cofactors_of(b, v);
        let lo = self.and_rec(a0, b0);
        let hi = self.and_rec(a1, b1);
        let r = self.mk_node(v, lo, hi);
        self.cache_insert(OpKey::And(a, b), r);
        r
    }

    fn or_rec(&mut self, a: Bdd, b: Bdd) -> Bdd {
        if a == Bdd::TRUE || b == Bdd::TRUE {
            return Bdd::TRUE;
        }
        if a == Bdd::FALSE {
            return b;
        }
        if b == Bdd::FALSE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(r) = self.cached(OpKey::Or(a, b)) {
            return r;
        }
        let v = self.node_of(a).var.min(self.node_of(b).var);
        let (a0, a1) = self.cofactors_of(a, v);
        let (b0, b1) = self.cofactors_of(b, v);
        let lo = self.or_rec(a0, b0);
        let hi = self.or_rec(a1, b1);
        let r = self.mk_node(v, lo, hi);
        self.cache_insert(OpKey::Or(a, b), r);
        r
    }

    fn xor_rec(&mut self, a: Bdd, b: Bdd) -> Bdd {
        if a == b {
            return Bdd::FALSE;
        }
        if a == Bdd::FALSE {
            return b;
        }
        if b == Bdd::FALSE {
            return a;
        }
        if a == Bdd::TRUE {
            return self.not_rec(b);
        }
        if b == Bdd::TRUE {
            return self.not_rec(a);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(r) = self.cached(OpKey::Xor(a, b)) {
            return r;
        }
        let v = self.node_of(a).var.min(self.node_of(b).var);
        let (a0, a1) = self.cofactors_of(a, v);
        let (b0, b1) = self.cofactors_of(b, v);
        let lo = self.xor_rec(a0, b0);
        let hi = self.xor_rec(a1, b1);
        let r = self.mk_node(v, lo, hi);
        self.cache_insert(OpKey::Xor(a, b), r);
        r
    }

    fn not_rec(&mut self, a: Bdd) -> Bdd {
        if a == Bdd::FALSE {
            return Bdd::TRUE;
        }
        if a == Bdd::TRUE {
            return Bdd::FALSE;
        }
        if let Some(r) = self.cached(OpKey::Not(a)) {
            return r;
        }
        let n = self.node_of(a);
        let lo = self.not_rec(n.lo);
        let hi = self.not_rec(n.hi);
        let r = self.mk_node(n.var, lo, hi);
        self.cache_insert(OpKey::Not(a), r);
        r
    }
}

impl Apply for BddManager {
    fn node_of(&self, f: Bdd) -> Node {
        self.nodes[f.index()]
    }

    fn cached(&mut self, key: OpKey) -> Option<Bdd> {
        self.cache.lookup(key)
    }

    fn cache_insert(&mut self, key: OpKey, r: Bdd) {
        self.cache.insert(key, r);
    }

    fn mk_node(&mut self, var: VarId, lo: Bdd, hi: Bdd) -> Bdd {
        self.mk(var, lo, hi)
    }
}

/// The node-creating Boolean operations shared by [`BddManager`] (the
/// retarget-time owner) and [`BddOverlay`](crate::BddOverlay) (the
/// per-compilation scratch arena).
///
/// Code that only *combines* conditions — emission folding instruction
/// fields into execution conditions, compaction conjoining word conditions
/// — is generic over this trait, so it runs unchanged against a mutable
/// manager (unit tests, retargeting) or a session overlay (compilation
/// against a frozen target).
pub trait BddOps {
    /// The function of a single variable, registering `name` on first use.
    fn var(&mut self, name: &str) -> Bdd;
    /// Registers (or looks up) a variable by name.
    fn var_id(&mut self, name: &str) -> VarId;
    /// The positive or negative literal of `id`.
    fn literal(&mut self, id: VarId, phase: bool) -> Bdd;
    /// Conjunction `a && b`.
    fn and(&mut self, a: Bdd, b: Bdd) -> Bdd;
    /// Disjunction `a || b`.
    fn or(&mut self, a: Bdd, b: Bdd) -> Bdd;
    /// Exclusive or `a ^ b`.
    fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd;
    /// Negation `!a`.
    fn not(&mut self, a: Bdd) -> Bdd;

    /// Is `f` satisfiable?
    fn is_sat(&self, f: Bdd) -> bool {
        f != Bdd::FALSE
    }

    /// Is `f` the constant-false function?
    fn is_false(&self, f: Bdd) -> bool {
        f == Bdd::FALSE
    }

    /// Is `f` the constant-true function?
    fn is_true(&self, f: Bdd) -> bool {
        f == Bdd::TRUE
    }

    /// The condition "bit-vector `bits` equals `value`" (`bits[0]` is the
    /// least significant bit).
    fn vector_equals(&mut self, bits: &[Bdd], value: u64) -> Bdd {
        let mut acc = Bdd::TRUE;
        for (i, &b) in bits.iter().enumerate() {
            let want = (value >> i) & 1 == 1;
            let lit = if want { b } else { self.not(b) };
            acc = self.and(acc, lit);
            if acc == Bdd::FALSE {
                break;
            }
        }
        acc
    }
}

impl BddOps for BddManager {
    fn var(&mut self, name: &str) -> Bdd {
        BddManager::var(self, name)
    }

    fn var_id(&mut self, name: &str) -> VarId {
        BddManager::var_id(self, name)
    }

    fn literal(&mut self, id: VarId, phase: bool) -> Bdd {
        BddManager::literal(self, id, phase)
    }

    fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        BddManager::and(self, a, b)
    }

    fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        BddManager::or(self, a, b)
    }

    fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        BddManager::xor(self, a, b)
    }

    fn not(&mut self, a: Bdd) -> Bdd {
        BddManager::not(self, a)
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "bdd(false)"),
            Bdd::TRUE => write!(f, "bdd(true)"),
            other => write!(f, "bdd(#{})", other.0),
        }
    }
}
