//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no crates.io access, so the
//! benches link against this vendored subset instead of the real crate.  It
//! implements the API surface the `record-bench` benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `iter` — with a
//! simple wall-clock measurement loop (fixed warm-up, `sample_size` timed
//! samples, median-of-samples report).  Swap the `[workspace.dependencies]`
//! entry for the real crate to get statistics, plots and comparisons.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure given to `bench_function`/`bench_with_input`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median sample duration, filled by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then `samples` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                black_box(routine());
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.elapsed = times[times.len() / 2];
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default is 100;
    /// the shim default is intentionally small).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{id}: median {:?} ({} samples)",
            self.name, b.elapsed, b.samples
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
