//! Code-generation errors.

use std::error::Error;
use std::fmt;

/// An error raised while generating code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// No cover exists for an expression tree (missing operator, oversized
    /// constant, unreachable destination).
    Select(String),
    /// A register conflict required a spill but the machine has no
    /// store/reload templates for the register.
    NoSpillPath(String),
    /// The data memory cannot hold all variables and scratch slots, or the
    /// register file ran out of cells.
    OutOfStorage(String),
    /// A variable was referenced that the binding does not know.
    UnboundVariable(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Select(s) => write!(f, "selection failed: {s}"),
            CodegenError::NoSpillPath(s) => write!(f, "no spill path: {s}"),
            CodegenError::OutOfStorage(s) => write!(f, "out of storage: {s}"),
            CodegenError::UnboundVariable(s) => write!(f, "unbound variable `{s}`"),
        }
    }
}

impl Error for CodegenError {}
