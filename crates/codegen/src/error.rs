//! Code-generation errors.
//!
//! Variants are structured — they name the storage, location or variable
//! involved and, where one exists, the RT index reached — so `record-core`
//! can surface them as diagnostics without parsing message strings.

use std::error::Error;
use std::fmt;

/// An error raised while generating code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// No cover exists for an expression tree (missing operator, oversized
    /// constant, unreachable destination).
    Select {
        /// What the selector reported.
        message: String,
        /// When the selector proved the machine has *no rule at all* for
        /// an operator, the operator's mnemonic (see
        /// [`record_selgen::SelectError::missing_op`]).
        missing_op: Option<&'static str>,
    },
    /// A register conflict required a spill but the machine has no
    /// store/reload templates for the register, or the conflict is cyclic.
    NoSpillPath {
        /// Rendered name of the register/location involved.
        loc: String,
        /// How many RTs the *failing statement's* emitter had produced
        /// when it stopped.  Each statement (and each speculative split
        /// attempt) emits into a fresh sequence, so this is
        /// statement-relative — a failed compile yields no kernel-wide op
        /// list this could index into.
        at_op: usize,
        /// What exactly went wrong.
        detail: String,
    },
    /// A storage ran out of words or cells (data memory overflow, register
    /// file exhaustion, scratch watermark misuse).
    OutOfStorage {
        /// Instance name of the exhausted storage.
        storage: String,
        /// What was being allocated.
        detail: String,
    },
    /// A variable (or function) was referenced that the binding does not
    /// know.
    UnboundVariable {
        /// The unknown name.
        name: String,
    },
    /// The program needs a control transfer but the target exposes no
    /// usable PC-writing template (no jump path, or no conditional branch
    /// whose predicate tests a reachable register against zero).
    NoBranchPath {
        /// What exactly is missing.
        detail: String,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Select { message, .. } => write!(f, "selection failed: {message}"),
            CodegenError::NoSpillPath { loc, at_op, detail } => {
                write!(f, "no spill path at RT {at_op} involving {loc}: {detail}")
            }
            CodegenError::OutOfStorage { storage, detail } => {
                write!(f, "out of storage in `{storage}`: {detail}")
            }
            CodegenError::UnboundVariable { name } => write!(f, "unbound variable `{name}`"),
            CodegenError::NoBranchPath { detail } => {
                write!(f, "no branch path: {detail}")
            }
        }
    }
}

impl Error for CodegenError {}
