use crate::*;
use record_grammar::TreeGrammar;
use record_ir::Memory;
use record_netlist::Netlist;
use record_selgen::Selector;

/// A 16-bit accumulator DSP with a T register and a MAC path:
///   acc := acc {+,-,&} (ram | t*ram) | ram | t*ram ;  t := ram ;  ram := acc
const DSP8: &str = r#"
    module Alu {
        in a: bit(16);
        in b: bit(16);
        ctrl f: bit(2);
        out y: bit(16);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a - b;
                2 => y = a & b;
                3 => y = b;
            }
        }
    }
    module Mul {
        in a: bit(16);
        in b: bit(16);
        out y: bit(16);
        behavior { y = a * b; }
    }
    module Mux3 {
        in a: bit(16);
        in b: bit(16);
        in c: bit(16);
        ctrl s: bit(2);
        out y: bit(16);
        behavior {
            case s {
                0 => y = a;
                1 => y = b;
                2 => y = c;
            }
        }
    }
    module Reg16 {
        in d: bit(16);
        ctrl en: bit(1);
        out q: bit(16);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(4);
        in din: bit(16);
        ctrl w: bit(1);
        out dout: bit(16);
        memory cells[16]: bit(16);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Dsp8 {
        instruction word: bit(16);
        parts {
            alu: Alu; mul: Mul; bmux: Mux3; acc: Reg16; t: Reg16; ram: Ram;
        }
        connections {
            mul.a = t.q;
            mul.b = ram.dout;
            bmux.a = ram.dout;
            bmux.b = mul.y;
            bmux.c = I[15:12];
            bmux.s = I[11:10];
            alu.a = acc.q;
            alu.b = bmux.y;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[3];
            t.d = ram.dout;
            t.en = I[8];
            ram.addr = I[7:4];
            ram.din = acc.q;
            ram.w = I[9];
        }
    }
"#;

/// Two registers, both load/storable, subtraction needs acc (left) and b
/// (right) — used to force evaluation-order decisions and spills.
const SPILLY: &str = r#"
    module Alu {
        in a: bit(16);
        in b: bit(16);
        ctrl f: bit(1);
        out y: bit(16);
        behavior {
            case f {
                0 => y = a - b;
                1 => y = a + b;
            }
        }
    }
    module Mux2 {
        in a: bit(16);
        in b: bit(16);
        ctrl s: bit(1);
        out y: bit(16);
        behavior {
            case s { 0 => y = a; 1 => y = b; }
        }
    }
    module Reg16 {
        in d: bit(16);
        ctrl en: bit(1);
        out q: bit(16);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(4);
        in din: bit(16);
        ctrl w: bit(1);
        out dout: bit(16);
        memory cells[16]: bit(16);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Spilly {
        instruction word: bit(16);
        parts {
            alu: Alu; opmux: Mux2; accmux: Mux2; bmux: Mux2; dinmux: Mux2;
            acc: Reg16; b: Reg16; ram: Ram;
        }
        connections {
            alu.a = acc.q;
            alu.b = opmux.y;
            alu.f = I[0];
            opmux.a = ram.dout;
            opmux.b = b.q;
            opmux.s = I[1];
            accmux.a = alu.y;
            accmux.b = ram.dout;
            accmux.s = I[2];
            acc.d = accmux.y;
            acc.en = I[3];
            bmux.a = acc.q;
            bmux.b = ram.dout;
            bmux.s = I[4];
            b.d = bmux.y;
            b.en = I[5];
            dinmux.a = acc.q;
            dinmux.b = b.q;
            dinmux.s = I[6];
            ram.din = dinmux.y;
            ram.w = I[7];
            ram.addr = I[11:8];
        }
    }
"#;

struct Rig {
    netlist: Netlist,
    base: record_rtl::TemplateBase,
    selector: Selector,
    manager: std::cell::RefCell<record_bdd::BddManager>,
    tables: crate::EmitTables,
}

fn rig(src: &str) -> Rig {
    let model = record_hdl::parse(src).expect("parses");
    let netlist = record_netlist::elaborate(&model).expect("elaborates");
    let ex = record_isex::extract(&netlist, &Default::default()).expect("extracts");
    let mut base = ex.base.clone();
    record_rtl::extend(&mut base, &record_rtl::ExtensionOptions::default());
    let grammar = TreeGrammar::from_base(&base, &netlist);
    let selector = Selector::generate(std::sync::Arc::new(grammar));
    let mut manager = ex.manager;
    let tables = crate::EmitTables::build(&netlist, &mut manager, netlist.iword_width());
    Rig {
        netlist,
        base,
        selector,
        manager: std::cell::RefCell::new(manager),
        tables,
    }
}

/// Compiles `csrc`'s function `f`, runs both the interpreter and the RT
/// simulator from `init`, and asserts every variable agrees afterwards.
/// Returns the op count.
fn compile_and_check(r: &Rig, csrc: &str, init: &[(&str, Vec<u64>)]) -> usize {
    let prog = record_ir::parse(csrc).expect("mini-C parses");
    let flat = record_ir::lower(&prog, "f").expect("lowers");
    let dm = r
        .netlist
        .storages()
        .iter()
        .find(|s| s.kind == record_netlist::StorageKind::Memory)
        .expect("data memory")
        .id;
    let mut binding = Binding::allocate(&prog, "f", &r.netlist, dm).expect("binds");
    let ops = compile(
        &flat,
        &r.selector,
        &r.base,
        &mut binding,
        &r.netlist,
        &mut *r.manager.borrow_mut(),
        &r.tables,
        16,
        &mut record_probe::Probe::disabled(),
    )
    .expect("compiles")
    .ops;

    // Oracle: the mini-C interpreter.
    let mut mem = Memory::new();
    for (k, v) in init {
        mem.insert((*k).to_owned(), v.clone());
    }
    record_ir::interp(&prog, "f", &mut mem, 16).expect("interprets");

    // Machine: run the RT ops.
    let mut m = Machine::new(&r.netlist);
    for (k, v) in init {
        let base_addr = binding
            .assignments()
            .find(|(n, _)| n == k)
            .expect("bound var")
            .1;
        for (i, val) in v.iter().enumerate() {
            m.set_mem(dm, base_addr + i as u64, *val & 0xFFFF);
        }
    }
    m.run(&ops);

    // Compare only variables the flattened program touches: loop induction
    // variables are folded away by unrolling and legitimately never reach
    // machine memory.
    fn collect(e: &record_ir::FlatExpr, out: &mut std::collections::BTreeSet<String>) {
        match e {
            record_ir::FlatExpr::Load(r) => {
                out.insert(r.name.clone());
            }
            record_ir::FlatExpr::Unary(_, a) => collect(a, out),
            record_ir::FlatExpr::Binary(_, a, b) => {
                collect(a, out);
                collect(b, out);
            }
            record_ir::FlatExpr::Const(_) => {}
        }
    }
    let mut touched = std::collections::BTreeSet::new();
    for st in &flat {
        touched.insert(st.target.name.clone());
        collect(&st.value, &mut touched);
    }
    for (name, addr) in binding.assignments() {
        if !touched.contains(name) {
            continue;
        }
        let want = &mem[name];
        for (i, w) in want.iter().enumerate() {
            assert_eq!(m.mem(dm, addr + i as u64), *w, "mismatch at {name}[{i}]");
        }
    }
    ops.len()
}

#[test]
fn mac_statement_compiles_to_four_ops() {
    let r = rig(DSP8);
    // s = s + a*b: load s -> acc, load a -> t, MAC with b, store s.
    let n = compile_and_check(
        &r,
        "int s, a, b; void f() { s = s + a * b; }",
        &[("s", vec![10]), ("a", vec![3]), ("b", vec![4])],
    );
    assert_eq!(n, 4);
}

#[test]
fn dot_product_correct_and_compact() {
    let r = rig(DSP8);
    let n = compile_and_check(
        &r,
        "int s, a[4], b[4]; void f() { int i; s = 0; for (i = 0; i < 4; i++) { s += a[i] * b[i]; } }",
        &[
            ("a", vec![1, 2, 3, 4]),
            ("b", vec![5, 6, 7, 8]),
        ],
    );
    // Statement 1: clear s (2 ops: load imm? no imm path => acc := ram? ).
    // Main loop: 4 iterations x (load s, load t, mac, store) at most.
    assert!(n <= 2 + 4 * 4, "op count {n}");
}

#[test]
fn subtraction_order_is_respected() {
    let r = rig(DSP8);
    compile_and_check(
        &r,
        "int x, p, q; void f() { x = p - q; }",
        &[("p", vec![100]), ("q", vec![30])],
    );
}

#[test]
fn copy_statement() {
    let r = rig(DSP8);
    let n = compile_and_check(&r, "int x, y; void f() { x = y; }", &[("y", vec![77])]);
    // acc := ram[y]; ram[x] := acc.
    assert_eq!(n, 2);
}

#[test]
fn wrapping_arithmetic_matches_interpreter() {
    let r = rig(DSP8);
    compile_and_check(
        &r,
        "int x, a, b; void f() { x = a * b + a; }",
        &[("a", vec![0xFFFF]), ("b", vec![0x1234])],
    );
}

#[test]
fn conflict_resolved_by_operand_ordering() {
    let r = rig(SPILLY);
    // Both operands of the outer - need acc/b; ordering avoids a spill.
    let n = compile_and_check(
        &r,
        "int x, p, q, rr, s; void f() { x = (p - q) - (rr - s); }",
        &[
            ("p", vec![50]),
            ("q", vec![8]),
            ("rr", vec![30]),
            ("s", vec![10]),
        ],
    );
    // No scratch traffic: 2 loads + sub, move to b, 2 loads? Exact: rr-s
    // into acc (acc:=ram, acc-=ram), b := acc, p-q into acc, acc -= b,
    // store = 7 ops, no spills.
    assert_eq!(n, 7);
}

#[test]
fn deep_conflict_forces_spill_and_stays_correct() {
    let r = rig(SPILLY);
    let n = compile_and_check(
        &r,
        "int x, p, q, rr, s, t, u; void f() { x = ((p - q) - (rr - s)) - (t - u); }",
        &[
            ("p", vec![500]),
            ("q", vec![8]),
            ("rr", vec![30]),
            ("s", vec![10]),
            ("t", vec![7]),
            ("u", vec![2]),
        ],
    );
    // The middle (rr-s) value must be spilled while (t-u) occupies b.
    assert!(n >= 12, "expected spill traffic, got {n} ops");
}

#[test]
fn baseline_never_chains() {
    let r = rig(DSP8);
    let prog = record_ir::parse("int s, a, b; void f() { s = s + a * b; }").unwrap();
    let flat = record_ir::lower(&prog, "f").unwrap();
    let dm = r.netlist.storage_by_name("ram").unwrap().id;

    let mut b1 = Binding::allocate(&prog, "f", &r.netlist, dm).unwrap();
    let smart = compile(
        &flat,
        &r.selector,
        &r.base,
        &mut b1,
        &r.netlist,
        &mut *r.manager.borrow_mut(),
        &r.tables,
        16,
        &mut record_probe::Probe::disabled(),
    )
    .unwrap()
    .ops;

    let mut b2 = Binding::allocate(&prog, "f", &r.netlist, dm).unwrap();
    let naive = baseline_compile(
        &flat,
        &r.selector,
        &r.base,
        &mut b2,
        &r.netlist,
        &mut *r.manager.borrow_mut(),
        &r.tables,
        16,
        &mut record_probe::Probe::disabled(),
    )
    .unwrap()
    .ops;

    assert!(
        naive.len() > smart.len(),
        "baseline {} vs record {}",
        naive.len(),
        smart.len()
    );

    // Baseline result is still correct.
    let mut m = Machine::new(&r.netlist);
    let s_addr = b2.assignments().find(|(n, _)| *n == "s").unwrap().1;
    let a_addr = b2.assignments().find(|(n, _)| *n == "a").unwrap().1;
    let b_addr = b2.assignments().find(|(n, _)| *n == "b").unwrap().1;
    m.set_mem(dm, s_addr, 10);
    m.set_mem(dm, a_addr, 3);
    m.set_mem(dm, b_addr, 4);
    m.run(&naive);
    assert_eq!(m.mem(dm, s_addr), 22);
}

#[test]
fn select_error_reports_subtree() {
    let r = rig(DSP8);
    let prog = record_ir::parse("int x, a, b; void f() { x = a / b; }").unwrap();
    let flat = record_ir::lower(&prog, "f").unwrap();
    let dm = r.netlist.storage_by_name("ram").unwrap().id;
    let mut binding = Binding::allocate(&prog, "f", &r.netlist, dm).unwrap();
    let err = compile(
        &flat,
        &r.selector,
        &r.base,
        &mut binding,
        &r.netlist,
        &mut *r.manager.borrow_mut(),
        &r.tables,
        16,
        &mut record_probe::Probe::disabled(),
    )
    .unwrap_err();
    assert!(matches!(err, CodegenError::Select { .. }), "{err}");
    assert!(err.to_string().contains("div"));
    // The DSP8 machine genuinely has no divider, and the selector proves
    // it: the error carries the missing operator, not just prose.
    match err {
        CodegenError::Select { missing_op, .. } => assert_eq!(missing_op, Some("div")),
        _ => unreachable!(),
    }
}

#[test]
fn binding_layout_is_sequential() {
    let r = rig(DSP8);
    let prog = record_ir::parse("int x, a[3], y; void f() { x = 0; }").unwrap();
    let dm = r.netlist.storage_by_name("ram").unwrap().id;
    let b = Binding::allocate(&prog, "f", &r.netlist, dm).unwrap();
    let m: std::collections::BTreeMap<&str, u64> = b.assignments().collect();
    assert_eq!(m["x"], 0);
    assert_eq!(m["a"], 1);
    assert_eq!(m["y"], 4);
}

#[test]
fn binding_rejects_oversized_program() {
    let r = rig(DSP8);
    let prog = record_ir::parse("int big[100]; void f() { big[0] = 0; }").unwrap();
    let dm = r.netlist.storage_by_name("ram").unwrap().id;
    let err = Binding::allocate(&prog, "f", &r.netlist, dm).unwrap_err();
    assert!(matches!(err, CodegenError::OutOfStorage { .. }));
}

#[test]
fn rendered_listing_is_readable() {
    let r = rig(DSP8);
    let prog = record_ir::parse("int s, a, b; void f() { s = s + a * b; }").unwrap();
    let flat = record_ir::lower(&prog, "f").unwrap();
    let dm = r.netlist.storage_by_name("ram").unwrap().id;
    let mut binding = Binding::allocate(&prog, "f", &r.netlist, dm).unwrap();
    let ops = compile(
        &flat,
        &r.selector,
        &r.base,
        &mut binding,
        &r.netlist,
        &mut *r.manager.borrow_mut(),
        &r.tables,
        16,
        &mut record_probe::Probe::disabled(),
    )
    .unwrap()
    .ops;
    let listing: Vec<String> = ops.iter().map(|o| o.render(&r.netlist)).collect();
    assert!(listing.iter().any(|l| l.contains("acc :=")), "{listing:?}");
    assert!(listing.iter().any(|l| l.contains("t :=")), "{listing:?}");
}
