//! Code generation: selection driver, spill-aware emission, baseline
//! compiler and RT-level simulator.
//!
//! This crate turns lowered mini-C statements into sequences of concrete
//! RT operations for a retargeted machine:
//!
//! 1. [`Binding`] places program variables into the target's data memory
//!    (paper §3.1: "all primary source program inputs and program variables
//!    are a priori bound to certain memory or register resources").
//! 2. [`build_et`] shapes each flat statement into a destination-annotated
//!    expression tree over the target's storages.
//! 3. [`compile`] runs the generated tree parser and *emits* the cover:
//!    register-file cells are allocated for intermediates, operand
//!    evaluation is ordered to avoid register conflicts, and unavoidable
//!    conflicts are resolved by spill/reload RTs through scratch memory —
//!    the role of the Araujo/Malik-style scheduling the paper cites.
//! 4. [`baseline_compile`] is the stand-in for the target-specific C
//!    compiler in the paper's Figure 2: a correct but naive code generator
//!    that expands every operator separately through memory temporaries,
//!    never exploiting chained operations.
//! 5. [`Machine`] executes RT operations concretely — the oracle used to
//!    prove generated code computes what the mini-C interpreter computes.
//!
//! # Example
//!
//! See the crate-level tests and `examples/quickstart.rs` in the workspace
//! root; a full pipeline needs an HDL model, so the example lives where one
//! is available.

mod baseline;
mod binding;
mod emit;
mod error;
mod etgen;
mod ops;
mod sim;

pub use baseline::baseline_compile;
pub use binding::Binding;
pub use emit::{
    compile, compile_cfg, compile_statement, EmitStats, EmitTables, Emitted, EmittedCfg,
};
pub use error::CodegenError;
pub use etgen::build_et;
pub use ops::{DestSim, Loc, RtOp, SimExpr, Transfer};
pub use sim::Machine;

#[cfg(test)]
mod tests;
