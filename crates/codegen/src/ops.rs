//! Concrete RT operations: the output of code generation.

use record_bdd::Bdd;
use record_netlist::{Netlist, ProcPortId, StorageId};
use record_rtl::{OpKind, TemplateId};

/// A concrete storage location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A register.
    Reg(StorageId),
    /// A specific register-file cell.
    Rf(StorageId, u64),
    /// A memory word at a known address.
    Mem(StorageId, u64),
    /// A memory word at a run-time-computed address (conservative for
    /// dependence analysis).
    MemDyn(StorageId),
    /// A primary port.
    Port(ProcPortId),
}

impl Loc {
    /// May `self` and `other` denote the same word?
    pub fn may_alias(&self, other: &Loc) -> bool {
        match (self, other) {
            (Loc::Mem(a, x), Loc::Mem(b, y)) => a == b && x == y,
            (Loc::Mem(a, _), Loc::MemDyn(b))
            | (Loc::MemDyn(a), Loc::Mem(b, _))
            | (Loc::MemDyn(a), Loc::MemDyn(b)) => a == b,
            _ => self == other,
        }
    }

    /// Renders with storage names from `netlist`.
    pub fn render(&self, n: &Netlist) -> String {
        match self {
            Loc::Reg(s) => n.storage(*s).name.clone(),
            Loc::Rf(s, c) => format!("{}[{c}]", n.storage(*s).name),
            Loc::Mem(s, a) => format!("{}[{a}]", n.storage(*s).name),
            Loc::MemDyn(s) => format!("{}[*]", n.storage(*s).name),
            Loc::Port(p) => n.proc_port(*p).name.clone(),
        }
    }
}

/// A concrete value expression, executable by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimExpr {
    Const(u64),
    /// Read a register / regfile cell / fixed memory word / input port.
    Read(Loc),
    /// Memory read at a computed address.
    MemRead(StorageId, Box<SimExpr>),
    Op(OpKind, Vec<SimExpr>),
}

impl SimExpr {
    /// All locations this expression may read.
    pub fn reads(&self) -> Vec<Loc> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<Loc>) {
        match self {
            SimExpr::Const(_) => {}
            SimExpr::Read(l) => out.push(l.clone()),
            SimExpr::MemRead(s, addr) => {
                out.push(Loc::MemDyn(*s));
                addr.collect_reads(out);
            }
            SimExpr::Op(_, args) => args.iter().for_each(|a| a.collect_reads(out)),
        }
    }
}

/// The destination of a concrete RT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DestSim {
    /// A fixed location.
    Loc(Loc),
    /// A memory word at a computed address.
    MemAt(StorageId, SimExpr),
}

impl DestSim {
    /// The location written, conservatively.
    pub fn loc(&self) -> Loc {
        match self {
            DestSim::Loc(l) => l.clone(),
            DestSim::MemAt(s, addr) => match addr {
                SimExpr::Const(a) => Loc::Mem(*s, *a),
                _ => Loc::MemDyn(*s),
            },
        }
    }
}

/// The control-transfer behavior of an op that writes the program
/// counter.
#[derive(Debug, Clone, PartialEq)]
pub enum Transfer {
    /// Unconditional jump: always taken.
    Always,
    /// Conditional branch: taken iff `(eval(test) == value) == eq`.
    Cond { test: SimExpr, value: u64, eq: bool },
}

/// One emitted RT operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RtOp {
    /// The template this operation instantiates.
    pub template: TemplateId,
    /// Concrete destination.
    pub dest: DestSim,
    /// Concrete value expression.
    pub expr: SimExpr,
    /// `Some` marks a control transfer: `dest` is the PC and `expr`
    /// evaluates to the target.  Emission leaves the target as the
    /// `SimExpr::Const` *block id*; the session patches it to a vertical
    /// op index after allocation, and
    /// [`Schedule::materialize`](../record_compact) rewrites it to a word
    /// index for compacted execution.
    pub transfer: Option<Transfer>,
    /// Execution condition: the template's condition conjoined with this
    /// op's instruction-field constraints.  Used by compaction.
    ///
    /// The handle belongs to the BDD store that *emitted* the op.  When
    /// emission ran against a session overlay, constraint conjunction may
    /// have created overlay-local nodes, so the handle is only meaningful
    /// inside that session — interpreting it against the frozen base
    /// alone (or another session) yields wrong answers or panics.
    /// Equality comparisons between kernels compiled from the same frozen
    /// base remain exact: identical emission produces identical handles.
    pub cond: Bdd,
}

impl RtOp {
    /// All locations read (including a conditional transfer's test).
    pub fn reads(&self) -> Vec<Loc> {
        let mut r = self.expr.reads();
        if let DestSim::MemAt(_, addr) = &self.dest {
            addr.collect_reads(&mut r);
        }
        if let Some(Transfer::Cond { test, .. }) = &self.transfer {
            test.collect_reads(&mut r);
        }
        r
    }

    /// The location written.
    pub fn write(&self) -> Loc {
        self.dest.loc()
    }

    /// Renders an assembly-like line.
    pub fn render(&self, n: &Netlist) -> String {
        fn expr(e: &SimExpr, n: &Netlist) -> String {
            match e {
                SimExpr::Const(v) => format!("{v}"),
                SimExpr::Read(l) => l.render(n),
                SimExpr::MemRead(s, a) => format!("{}[{}]", n.storage(*s).name, expr(a, n)),
                SimExpr::Op(op, args) if op.arity() == 2 => {
                    format!(
                        "({} {} {})",
                        expr(&args[0], n),
                        op.symbol(),
                        expr(&args[1], n)
                    )
                }
                SimExpr::Op(op, args) => {
                    format!("{}({})", op, expr(&args[0], n))
                }
            }
        }
        let dest = match &self.dest {
            DestSim::Loc(l) => l.render(n),
            DestSim::MemAt(s, a) => format!("{}[{}]", n.storage(*s).name, expr(a, n)),
        };
        match &self.transfer {
            None => format!("{dest} := {}", expr(&self.expr, n)),
            Some(Transfer::Always) => format!("{dest} := {}", expr(&self.expr, n)),
            Some(Transfer::Cond { test, value, eq }) => format!(
                "{dest} := {} when {} {} {value}",
                expr(&self.expr, n),
                expr(test, n),
                if *eq { "==" } else { "!=" },
            ),
        }
    }
}
