//! RT-level machine simulator: the correctness oracle.
//!
//! Executes emitted [`RtOp`]s against concrete storage state.  Two modes:
//!
//! * [`Machine::run`] — vertical code, one RT per cycle;
//! * [`Machine::run_compacted`] — horizontal code with *time-stationary*
//!   semantics: all RTs of one instruction word read the machine state
//!   from before the word and commit together (paper table 1 lists
//!   time-stationary code as the supported code type).

use crate::ops::{DestSim, Loc, RtOp, SimExpr, Transfer};
use record_netlist::{Netlist, ProcPortId, StorageId, StorageKind};
use std::collections::HashMap;

/// Execution fuel: compiled code from terminating programs terminates, so
/// running dry means a miscompiled branch — stop with a panic the fuzz
/// harness contains rather than spinning forever.
const FUEL: u64 = 1 << 22;

/// Concrete machine state for a netlist's storages.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: HashMap<StorageId, u64>,
    mems: HashMap<StorageId, Vec<u64>>,
    widths: HashMap<StorageId, u16>,
    ports_in: HashMap<ProcPortId, u64>,
    ports_out: HashMap<ProcPortId, u64>,
}

impl Machine {
    /// Creates a zeroed machine for `netlist`.
    pub fn new(netlist: &Netlist) -> Machine {
        let mut regs = HashMap::new();
        let mut mems = HashMap::new();
        let mut widths = HashMap::new();
        for s in netlist.storages() {
            widths.insert(s.id, s.width);
            match s.kind {
                StorageKind::Register => {
                    regs.insert(s.id, 0);
                }
                StorageKind::Memory | StorageKind::RegFile => {
                    mems.insert(s.id, vec![0; s.size as usize]);
                }
            }
        }
        Machine {
            regs,
            mems,
            widths,
            ports_in: HashMap::new(),
            ports_out: HashMap::new(),
        }
    }

    fn mask(&self, s: StorageId) -> u64 {
        let w = self.widths.get(&s).copied().unwrap_or(64);
        if w >= 64 {
            u64::MAX
        } else {
            (1 << w) - 1
        }
    }

    /// Sets a register value (masked to its width).
    pub fn set_reg(&mut self, s: StorageId, v: u64) {
        let m = self.mask(s);
        self.regs.insert(s, v & m);
    }

    /// Register value.
    pub fn reg(&self, s: StorageId) -> u64 {
        self.regs.get(&s).copied().unwrap_or(0)
    }

    /// Sets one memory/regfile word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds or `s` is not a memory.
    pub fn set_mem(&mut self, s: StorageId, addr: u64, v: u64) {
        let m = self.mask(s);
        self.mems.get_mut(&s).expect("memory storage")[addr as usize] = v & m;
    }

    /// One memory/regfile word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds or `s` is not a memory.
    pub fn mem(&self, s: StorageId, addr: u64) -> u64 {
        self.mems.get(&s).expect("memory storage")[addr as usize]
    }

    /// Whole memory contents.
    pub fn mem_slice(&self, s: StorageId) -> &[u64] {
        self.mems.get(&s).expect("memory storage")
    }

    /// Drives a primary input port.
    pub fn set_port_in(&mut self, p: ProcPortId, v: u64) {
        self.ports_in.insert(p, v);
    }

    /// Last value written to a primary output port.
    pub fn port_out(&self, p: ProcPortId) -> Option<u64> {
        self.ports_out.get(&p).copied()
    }

    fn read(&self, loc: &Loc) -> u64 {
        match loc {
            Loc::Reg(s) => self.reg(*s),
            Loc::Rf(s, c) => self.mem(*s, *c),
            Loc::Mem(s, a) => self.mem(*s, *a),
            Loc::MemDyn(_) => panic!("dynamic location cannot be read directly"),
            Loc::Port(p) => self.ports_in.get(p).copied().unwrap_or(0),
        }
    }

    fn eval(&self, e: &SimExpr, width: u16) -> u64 {
        let m = if width >= 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        match e {
            SimExpr::Const(v) => *v & m,
            SimExpr::Read(l) => self.read(l) & m,
            SimExpr::MemRead(s, addr) => {
                let a = self.eval(addr, 64);
                self.mem(*s, a % self.mems[s].len() as u64)
            }
            SimExpr::Op(op, args) => {
                let vals: Vec<u64> = args.iter().map(|a| self.eval(a, width)).collect();
                op.eval(&vals, width)
            }
        }
    }

    fn width_of_dest(&self, d: &DestSim) -> u16 {
        let s = match d {
            DestSim::Loc(Loc::Reg(s) | Loc::Rf(s, _) | Loc::Mem(s, _) | Loc::MemDyn(s)) => *s,
            DestSim::Loc(Loc::Port(_)) => return 64,
            DestSim::MemAt(s, _) => *s,
        };
        self.widths.get(&s).copied().unwrap_or(64)
    }

    /// Executes one RT.
    pub fn step(&mut self, op: &RtOp) {
        let width = self.width_of_dest(&op.dest);
        let v = self.eval(&op.expr, width);
        self.commit(&op.dest, v);
    }

    fn commit(&mut self, dest: &DestSim, v: u64) {
        match dest {
            DestSim::Loc(Loc::Reg(s)) => self.set_reg(*s, v),
            DestSim::Loc(Loc::Rf(s, c)) => self.set_mem(*s, *c, v),
            DestSim::Loc(Loc::Mem(s, a)) => self.set_mem(*s, *a, v),
            DestSim::Loc(Loc::MemDyn(_)) => panic!("dynamic loc as direct destination"),
            DestSim::Loc(Loc::Port(p)) => {
                self.ports_out.insert(*p, v);
            }
            DestSim::MemAt(s, addr) => {
                let a = self.eval(addr, 64) % self.mems[s].len() as u64;
                self.set_mem(*s, a, v);
            }
        }
    }

    /// Is this op's transfer taken in the current state?  `true` for
    /// plain (non-transfer) ops.
    fn taken(&self, op: &RtOp) -> bool {
        match &op.transfer {
            None | Some(Transfer::Always) => true,
            Some(Transfer::Cond { test, value, eq }) => {
                // Stored values are already masked; 64-bit evaluation
                // reads them back exactly.
                (self.eval(test, 64) == *value) == *eq
            }
        }
    }

    /// Executes vertical code: one RT per machine cycle, with a real
    /// program counter.  A transfer op whose condition holds jumps to the
    /// op index its target expression evaluates to (`ops.len()` halts);
    /// otherwise execution falls through to the next op.
    ///
    /// # Panics
    ///
    /// Panics when the cycle budget runs dry (a miscompiled branch).
    pub fn run(&mut self, ops: &[RtOp]) {
        let mut pc = 0usize;
        let mut fuel = FUEL;
        while pc < ops.len() {
            assert!(fuel > 0, "machine fuel exhausted after {FUEL} cycles");
            fuel -= 1;
            let op = &ops[pc];
            if op.transfer.is_none() {
                self.step(op);
                pc += 1;
            } else if self.taken(op) {
                // Targets are compile-time op indices; evaluate wide so
                // programs longer than the PC register still index.
                let target = self.eval(&op.expr, 64);
                self.commit(&op.dest.clone(), target);
                pc = target as usize;
            } else {
                pc += 1;
            }
        }
    }

    /// Executes compacted code: `words[i]` holds the RTs of instruction
    /// word `i`; all read pre-state, then all commit (time-stationary).
    /// A taken transfer in a word steers the next word; transfer targets
    /// are word indices after
    /// [`Schedule::materialize`](../record_compact) (`words.len()`
    /// halts).
    ///
    /// # Panics
    ///
    /// Panics when the cycle budget runs dry (a miscompiled branch).
    pub fn run_compacted(&mut self, words: &[Vec<RtOp>]) {
        let mut pc = 0usize;
        let mut fuel = FUEL;
        while pc < words.len() {
            assert!(fuel > 0, "machine fuel exhausted after {FUEL} cycles");
            fuel -= 1;
            let mut next = pc + 1;
            let effects: Vec<(DestSim, u64, bool)> = words[pc]
                .iter()
                .filter(|op| self.taken(op))
                .map(|op| {
                    let is_transfer = op.transfer.is_some();
                    let width = if is_transfer {
                        64
                    } else {
                        self.width_of_dest(&op.dest)
                    };
                    (op.dest.clone(), self.eval(&op.expr, width), is_transfer)
                })
                .collect();
            for (dest, v, is_transfer) in effects {
                if is_transfer {
                    next = v as usize;
                }
                self.commit(&dest, v);
            }
            pc = next;
        }
    }
}
