//! The baseline compiler: Figure 2's "target-specific C compiler" stand-in.
//!
//! The paper's Figure 2 compares RECORD against TI's C compiler for the
//! TMS320C25, whose overheads come from naive per-operator code: every
//! operation is expanded separately, operands travel through memory, and
//! chained operations (MAC) are never exploited.  This module reproduces
//! that compilation *style* retargetably: each operator of the source
//! expression becomes its own single-operator expression tree evaluated
//! into a memory temporary.  Selection of each mini-tree still uses the
//! generated tree parser (so the code is correct for the machine), but no
//! cross-operator chaining, no algebraic restructuring and no compaction
//! can happen.

use crate::binding::Binding;
use crate::emit::{compile_statement, EmitStats, EmitTables, Emitted};
use crate::error::CodegenError;
use crate::ops::RtOp;
use record_bdd::BddOps;
use record_grammar::{Et, EtBuilder, EtKind, NodeIdx};
use record_ir::{FlatExpr, FlatStmt};
use record_netlist::Netlist;
use record_probe::Probe;
use record_rtl::TemplateBase;
use record_selgen::Selector;

/// An operand produced by naive expansion: a constant or a memory word.
#[derive(Debug, Clone)]
enum Operand {
    Const(u64),
    Mem(u64),
}

/// Compiles statements in the naive per-operator style.
///
/// # Errors
///
/// Same failure modes as [`crate::compile`].
#[allow(clippy::too_many_arguments)]
pub fn baseline_compile<M: BddOps>(
    stmts: &[FlatStmt],
    selector: &Selector,
    base: &TemplateBase,
    binding: &mut Binding,
    netlist: &Netlist,
    manager: &mut M,
    tables: &EmitTables,
    width: u16,
    probe: &mut Probe<'_>,
) -> Result<Emitted, CodegenError> {
    let mut out = Vec::new();
    let mut stats = EmitStats::default();
    for stmt in stmts {
        probe.begin("statement");
        let mark = binding.scratch_mark();
        let target = binding.addr_of(&stmt.target);
        let r = target.and_then(|target| {
            expand(
                &stmt.value,
                Some(target),
                selector,
                base,
                binding,
                netlist,
                manager,
                tables,
                width,
                &mut out,
                &mut stats,
            )
        });
        probe.end("statement");
        r?;
        stats.statements += 1;
        binding.release_scratch(mark)?;
    }
    Ok(Emitted { ops: out, stats })
}

fn mask(width: u16) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    }
}

/// Expands `e`; the result lands at `target` (or a fresh temp if `None`).
/// Returns the operand describing where the value is.
#[allow(clippy::too_many_arguments)]
fn expand<M: BddOps>(
    e: &FlatExpr,
    target: Option<u64>,
    selector: &Selector,
    base: &TemplateBase,
    binding: &mut Binding,
    netlist: &Netlist,
    manager: &mut M,
    tables: &EmitTables,
    width: u16,
    out: &mut Vec<RtOp>,
    stats: &mut EmitStats,
) -> Result<Operand, CodegenError> {
    let operand = match e {
        FlatExpr::Const(c) => Operand::Const((*c as u64) & mask(width)),
        FlatExpr::Load(r) => Operand::Mem(binding.addr_of(r)?),
        FlatExpr::Unary(op, a) => {
            let ao = expand(
                a, None, selector, base, binding, netlist, manager, tables, width, out, stats,
            )?;
            let dst = next_dest(target, binding)?;
            let mut b = EtBuilder::new();
            let an = leaf(&mut b, &ao, binding);
            let value = b.node(EtKind::Op(*op), vec![an]);
            emit_step(
                b, value, dst, selector, base, binding, netlist, manager, tables, out, stats,
            )?;
            return Ok(Operand::Mem(dst));
        }
        FlatExpr::Binary(op, l, r) => {
            let lo = expand(
                l, None, selector, base, binding, netlist, manager, tables, width, out, stats,
            )?;
            let ro = expand(
                r, None, selector, base, binding, netlist, manager, tables, width, out, stats,
            )?;
            let dst = next_dest(target, binding)?;
            let mut b = EtBuilder::new();
            let ln = leaf(&mut b, &lo, binding);
            let rn = leaf(&mut b, &ro, binding);
            let value = b.node(EtKind::Op(*op), vec![ln, rn]);
            emit_step(
                b, value, dst, selector, base, binding, netlist, manager, tables, out, stats,
            )?;
            return Ok(Operand::Mem(dst));
        }
    };
    // Pure copies (x = y; x = 5;) still have to reach the target.
    if let Some(t) = target {
        let mut b = EtBuilder::new();
        let value = leaf(&mut b, &operand, binding);
        emit_step(
            b, value, t, selector, base, binding, netlist, manager, tables, out, stats,
        )?;
        return Ok(Operand::Mem(t));
    }
    Ok(operand)
}

fn next_dest(target: Option<u64>, binding: &mut Binding) -> Result<u64, CodegenError> {
    match target {
        Some(t) => Ok(t),
        None => binding.scratch(),
    }
}

fn leaf(b: &mut EtBuilder, o: &Operand, binding: &Binding) -> NodeIdx {
    match o {
        Operand::Const(v) => b.leaf(EtKind::Const(*v)),
        Operand::Mem(a) => {
            let an = b.leaf(EtKind::Const(*a));
            b.node(EtKind::MemRead(binding.data_mem()), vec![an])
        }
    }
}

/// Builds `dm[dst] := <value>` and compiles it as one statement.
#[allow(clippy::too_many_arguments)]
fn emit_step<M: BddOps>(
    mut b: EtBuilder,
    value: NodeIdx,
    dst: u64,
    selector: &Selector,
    base: &TemplateBase,
    binding: &mut Binding,
    netlist: &Netlist,
    manager: &mut M,
    tables: &EmitTables,
    out: &mut Vec<RtOp>,
    stats: &mut EmitStats,
) -> Result<(), CodegenError> {
    let addr = b.leaf(EtKind::Const(dst));
    let et = Et::store(binding.data_mem(), addr, value, b);
    out.extend(compile_statement(
        &et, selector, base, binding, netlist, manager, tables, stats,
    )?);
    Ok(())
}
