//! Variable binding: program variables → data-memory addresses.

use crate::error::CodegenError;
use record_ir::{Program, Ref};
use record_netlist::{Netlist, StorageId, StorageKind};
use std::collections::BTreeMap;

/// Placement of program variables in the target's data memory, plus a
/// scratch area for spills and compiler temporaries.
#[derive(Debug, Clone)]
pub struct Binding {
    data_mem: StorageId,
    mem_name: String,
    mem_size: u64,
    map: BTreeMap<String, u64>,
    scratch_next: u64,
}

impl Binding {
    /// Lays out all globals and locals of `function` sequentially from
    /// address 0 of `data_mem`; scratch slots follow the variables.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::OutOfStorage`] if the variables do not fit,
    /// and [`CodegenError::UnboundVariable`] if `function` does not exist.
    pub fn allocate(
        program: &Program,
        function: &str,
        netlist: &Netlist,
        data_mem: StorageId,
    ) -> Result<Binding, CodegenError> {
        let storage = netlist.storage(data_mem);
        assert_eq!(
            storage.kind,
            StorageKind::Memory,
            "binding target must be a data memory"
        );
        let f = program
            .function(function)
            .ok_or_else(|| CodegenError::UnboundVariable {
                name: function.to_owned(),
            })?;
        let mut map = BTreeMap::new();
        let mut next = 0u64;
        for d in program.globals.iter().chain(&f.locals) {
            map.insert(d.name.clone(), next);
            next += d.words();
        }
        if next > storage.size {
            return Err(CodegenError::OutOfStorage {
                storage: storage.name.clone(),
                detail: format!(
                    "variables need {next} words but only {} exist",
                    storage.size
                ),
            });
        }
        Ok(Binding {
            data_mem,
            mem_name: storage.name.clone(),
            mem_size: storage.size,
            map,
            scratch_next: next,
        })
    }

    /// The data memory variables live in.
    pub fn data_mem(&self) -> StorageId {
        self.data_mem
    }

    /// Address of a variable reference.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::UnboundVariable`] for unknown names.
    pub fn addr_of(&self, r: &Ref) -> Result<u64, CodegenError> {
        self.map
            .get(&r.name)
            .map(|base| base + r.offset)
            .ok_or_else(|| CodegenError::UnboundVariable {
                name: r.name.clone(),
            })
    }

    /// Reserves a fresh scratch word (spill slot / temporary).
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::OutOfStorage`] when the memory is full.
    pub fn scratch(&mut self) -> Result<u64, CodegenError> {
        if self.scratch_next >= self.mem_size {
            return Err(CodegenError::OutOfStorage {
                storage: self.mem_name.clone(),
                detail: format!(
                    "no scratch space left: watermark {} of {} words",
                    self.scratch_next, self.mem_size
                ),
            });
        }
        let a = self.scratch_next;
        self.scratch_next += 1;
        Ok(a)
    }

    /// Addresses currently assigned (variable name → base address).
    pub fn assignments(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Current scratch watermark; pass to [`Binding::release_scratch`] to
    /// reuse temporary space between statements.
    pub fn scratch_mark(&self) -> u64 {
        self.scratch_next
    }

    /// Releases scratch slots back to `mark` (obtained from
    /// [`Binding::scratch_mark`]).
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::OutOfStorage`] when `mark` lies above the
    /// current watermark — releasing space that was never reserved is a
    /// caller bug that would silently leak scratch words in release
    /// builds.
    pub fn release_scratch(&mut self, mark: u64) -> Result<(), CodegenError> {
        if mark > self.scratch_next {
            return Err(CodegenError::OutOfStorage {
                storage: self.mem_name.clone(),
                detail: format!(
                    "release_scratch(mark {mark}) above watermark {}",
                    self.scratch_next
                ),
            });
        }
        self.scratch_next = mark;
        Ok(())
    }
}
