//! Variable binding: program variables → data-memory addresses.
//!
//! Most variables go to the target's data memory.  When the target also
//! exposes a *constant memory* — a ROM whose read port feeds only the
//! multiplier, like a DSP coefficient store — read-only variables whose
//! every use is a multiplier operand can be placed there instead, freeing
//! data-memory words and making `mul(coef, x)`-shaped rules applicable.

use crate::error::CodegenError;
use record_ir::{FlatExpr, FlatStmt, Program, Ref};
use record_netlist::{Netlist, StorageId, StorageKind};
use record_rtl::OpKind;
use std::collections::{BTreeMap, BTreeSet};

/// Placement of program variables in the target's data memory (plus,
/// optionally, its constant memory), and a scratch area for spills and
/// compiler temporaries.
#[derive(Debug, Clone)]
pub struct Binding {
    data_mem: StorageId,
    mem_name: String,
    mem_size: u64,
    map: BTreeMap<String, u64>,
    /// The constant memory, when the target has one and placement used it.
    rom: Option<StorageId>,
    /// Variables placed in the constant memory (name → base address).
    rom_map: BTreeMap<String, u64>,
    scratch_next: u64,
}

impl Binding {
    /// Lays out all globals and locals of `function` sequentially from
    /// address 0 of `data_mem`; scratch slots follow the variables.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::OutOfStorage`] if the variables do not fit,
    /// and [`CodegenError::UnboundVariable`] if `function` does not exist.
    pub fn allocate(
        program: &Program,
        function: &str,
        netlist: &Netlist,
        data_mem: StorageId,
    ) -> Result<Binding, CodegenError> {
        Binding::allocate_with_const_mem(program, function, netlist, data_mem, None, &[])
    }

    /// Like [`Binding::allocate`], but may place read-only variables into
    /// the constant memory `const_mem` when `stmts` (the function's
    /// lowered body) proves every one of their reads feeds a multiply.
    ///
    /// Eligibility is conservative: a variable qualifies only if it is
    /// never written, is read at least once, and every read is a direct
    /// operand of a `*`.  When both operands of one multiply would end up
    /// in the ROM (the read port serves one operand per cycle), the
    /// right operand is demoted back to data memory; variables that no
    /// longer fit the ROM are demoted from the end of declaration order.
    ///
    /// # Errors
    ///
    /// Same as [`Binding::allocate`] (capacity is checked after ROM
    /// placement, so moving coefficients out can make a kernel fit).
    pub fn allocate_with_const_mem(
        program: &Program,
        function: &str,
        netlist: &Netlist,
        data_mem: StorageId,
        const_mem: Option<StorageId>,
        stmts: &[FlatStmt],
    ) -> Result<Binding, CodegenError> {
        let storage = netlist.storage(data_mem);
        assert_eq!(
            storage.kind,
            StorageKind::Memory,
            "binding target must be a data memory"
        );
        let f = program
            .function(function)
            .ok_or_else(|| CodegenError::UnboundVariable {
                name: function.to_owned(),
            })?;

        let rom_vars = match const_mem {
            Some(_) => rom_placeable(stmts),
            None => BTreeSet::new(),
        };
        let rom_size = const_mem.map_or(0, |rom| netlist.storage(rom).size);

        let mut map = BTreeMap::new();
        let mut rom_map = BTreeMap::new();
        let mut next = 0u64;
        let mut rom_next = 0u64;
        for d in program.globals.iter().chain(&f.locals) {
            // ROM capacity is enforced here, against declared sizes and in
            // declaration order, so overflow demotes the later variables.
            if rom_vars.contains(&d.name) && rom_next + d.words() <= rom_size {
                rom_map.insert(d.name.clone(), rom_next);
                rom_next += d.words();
            } else {
                map.insert(d.name.clone(), next);
                next += d.words();
            }
        }
        if next > storage.size {
            return Err(CodegenError::OutOfStorage {
                storage: storage.name.clone(),
                detail: format!(
                    "variables need {next} words but only {} exist",
                    storage.size
                ),
            });
        }
        Ok(Binding {
            data_mem,
            mem_name: storage.name.clone(),
            mem_size: storage.size,
            map,
            rom: const_mem.filter(|_| !rom_map.is_empty()),
            rom_map,
            scratch_next: next,
        })
    }

    /// The data memory variables live in.
    pub fn data_mem(&self) -> StorageId {
        self.data_mem
    }

    /// The constant memory, when any variable was placed there.
    pub fn const_mem(&self) -> Option<StorageId> {
        self.rom
    }

    /// The storage a variable reference reads from (constant memory for
    /// ROM-placed variables, data memory for everything else, including
    /// `$scratch` temporaries).
    pub fn storage_of(&self, r: &Ref) -> StorageId {
        match self.rom {
            Some(rom) if self.rom_map.contains_key(&r.name) => rom,
            _ => self.data_mem,
        }
    }

    /// Address of a variable reference (in [`Binding::storage_of`] its
    /// reference).
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::UnboundVariable`] for unknown names.
    pub fn addr_of(&self, r: &Ref) -> Result<u64, CodegenError> {
        self.map
            .get(&r.name)
            .or_else(|| self.rom_map.get(&r.name))
            .map(|base| base + r.offset)
            .ok_or_else(|| CodegenError::UnboundVariable {
                name: r.name.clone(),
            })
    }

    /// Reserves a fresh scratch word (spill slot / temporary).
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::OutOfStorage`] when the memory is full.
    pub fn scratch(&mut self) -> Result<u64, CodegenError> {
        if self.scratch_next >= self.mem_size {
            return Err(CodegenError::OutOfStorage {
                storage: self.mem_name.clone(),
                detail: format!(
                    "no scratch space left: watermark {} of {} words",
                    self.scratch_next, self.mem_size
                ),
            });
        }
        let a = self.scratch_next;
        self.scratch_next += 1;
        Ok(a)
    }

    /// Addresses currently assigned in data memory (variable name → base
    /// address).
    pub fn assignments(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Addresses assigned in the constant memory (variable name → base
    /// address); empty unless placement used a ROM.
    pub fn rom_assignments(&self) -> impl Iterator<Item = (&str, u64)> {
        self.rom_map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Current scratch watermark; pass to [`Binding::release_scratch`] to
    /// reuse temporary space between statements.
    pub fn scratch_mark(&self) -> u64 {
        self.scratch_next
    }

    /// Releases scratch slots back to `mark` (obtained from
    /// [`Binding::scratch_mark`]).
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::OutOfStorage`] when `mark` lies above the
    /// current watermark — releasing space that was never reserved is a
    /// caller bug that would silently leak scratch words in release
    /// builds.
    pub fn release_scratch(&mut self, mark: u64) -> Result<(), CodegenError> {
        if mark > self.scratch_next {
            return Err(CodegenError::OutOfStorage {
                storage: self.mem_name.clone(),
                detail: format!(
                    "release_scratch(mark {mark}) above watermark {}",
                    self.scratch_next
                ),
            });
        }
        self.scratch_next = mark;
        Ok(())
    }
}

/// The set of variable names eligible for constant-memory placement in
/// `stmts`, after multiplier-port conflicts are resolved (ROM capacity
/// is enforced later, during layout, against declared sizes).
fn rom_placeable(stmts: &[FlatStmt]) -> BTreeSet<String> {
    #[derive(Default)]
    struct Use {
        reads: u64,
        mul_reads: u64,
        written: bool,
    }
    let mut uses: BTreeMap<String, Use> = BTreeMap::new();

    fn scan(e: &FlatExpr, under_mul: bool, uses: &mut BTreeMap<String, Use>) {
        match e {
            FlatExpr::Const(_) => {}
            FlatExpr::Load(r) => {
                let u = uses.entry(r.name.clone()).or_default();
                u.reads += 1;
                if under_mul {
                    u.mul_reads += 1;
                }
            }
            FlatExpr::Unary(_, a) => scan(a, false, uses),
            FlatExpr::Binary(op, l, r) => {
                let mul = *op == OpKind::Mul;
                scan(l, mul, uses);
                scan(r, mul, uses);
            }
        }
    }
    for s in stmts {
        uses.entry(s.target.name.clone()).or_default().written = true;
        scan(&s.value, false, &mut uses);
    }

    let mut eligible: BTreeSet<String> = uses
        .into_iter()
        .filter(|(_, u)| !u.written && u.reads > 0 && u.reads == u.mul_reads)
        .map(|(n, _)| n)
        .collect();

    // One ROM read per multiply: when both operands would live in the
    // ROM, demote the right one (deterministically, in statement order).
    fn demote_conflicts(e: &FlatExpr, eligible: &mut BTreeSet<String>) {
        match e {
            FlatExpr::Const(_) | FlatExpr::Load(_) => {}
            FlatExpr::Unary(_, a) => demote_conflicts(a, eligible),
            FlatExpr::Binary(op, l, r) => {
                if *op == OpKind::Mul {
                    if let (FlatExpr::Load(a), FlatExpr::Load(b)) = (&**l, &**r) {
                        if eligible.contains(&a.name) && eligible.contains(&b.name) {
                            eligible.remove(&b.name);
                        }
                    }
                }
                demote_conflicts(l, eligible);
                demote_conflicts(r, eligible);
            }
        }
    }
    for s in stmts {
        demote_conflicts(&s.value, &mut eligible);
    }
    eligible
}
