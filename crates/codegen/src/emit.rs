//! Cover emission: register-file allocation, conflict-avoiding operand
//! ordering and spill insertion.
//!
//! Tree parsing is cost-optimal but interference-blind (paper §3.2:
//! "limitations of tree parsing mainly concern incorporation of register
//! spills").  This module implements the cited remedy: operands whose
//! evaluation clobbers the register holding a sibling's result are emitted
//! *first* where possible, and genuinely cyclic conflicts are broken by
//! spilling through data-memory scratch slots.

use crate::binding::Binding;
use crate::error::CodegenError;
use crate::ops::{DestSim, Loc, RtOp, SimExpr, Transfer};
use record_bdd::BddOps;
use record_grammar::{
    Et, EtDest, EtKind, GPat, NodeIdx, NonTermId, NonTermKind, RuleOrigin, TermKey,
};
use record_ir::{Cfg, FlatExpr, FlatStmt, Terminator};
use record_netlist::{Netlist, StorageId, StorageKind};
use record_probe::Probe;
use record_rtl::{CondPred, Dest, Pattern, TemplateBase, TemplateId};
use record_selgen::{Cover, RuleApp, SelectStats, Selector};
use std::collections::HashMap;
use std::time::Instant;

/// Work counters of one compilation's selection + emission.
///
/// Plain fields incremented at statement granularity — always on, and
/// independent of whether a trace sink is installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmitStats {
    /// Source statements compiled.
    pub statements: u64,
    /// Times a statement's tree had to be split through scratch memory
    /// because no whole-tree cover existed.
    pub splits: u64,
    /// Spill stores emitted (register pressure evictions).
    pub spill_stores: u64,
    /// Reloads emitted (spilled values brought back into registers).
    pub reloads: u64,
    /// Wall-clock nanoseconds spent in the tree parser.
    pub select_ns: u64,
    /// Wall-clock nanoseconds spent emitting covers.
    pub emit_ns: u64,
    /// Labelling work done by the tree parser.
    pub select: SelectStats,
}

/// The result of [`compile`] / [`crate::baseline_compile`]: the RT
/// sequence plus the work counters accumulated while producing it.
#[derive(Debug, Clone)]
pub struct Emitted {
    /// The compiled RT operations.
    pub ops: Vec<RtOp>,
    /// Selection and emission work counters.
    pub stats: EmitStats,
}

/// Compiles a list of flat statements; scratch space is recycled between
/// statements.
///
/// `probe` receives one `"statement"` span per source statement; pass
/// [`Probe::disabled`] when no trace is wanted.
///
/// # Errors
///
/// Propagates selection failures, unbound variables and spill-path /
/// storage exhaustion.
#[allow(clippy::too_many_arguments)]
pub fn compile<M: BddOps>(
    stmts: &[FlatStmt],
    selector: &Selector,
    base: &TemplateBase,
    binding: &mut Binding,
    netlist: &Netlist,
    manager: &mut M,
    tables: &EmitTables,
    width: u16,
    probe: &mut Probe<'_>,
) -> Result<Emitted, CodegenError> {
    let mut out = Vec::new();
    let mut stats = EmitStats::default();
    for stmt in stmts {
        probe.begin("statement");
        let mark = binding.scratch_mark();
        let r = compile_split(
            stmt, selector, base, binding, netlist, manager, tables, width, &mut out, &mut stats, 0,
        );
        probe.end("statement");
        r?;
        stats.statements += 1;
        binding.release_scratch(mark)?;
    }
    Ok(Emitted { ops: out, stats })
}

/// The result of [`compile_cfg`]: the RT sequence, the op range each
/// basic block occupies, and the work counters.
///
/// Transfer targets inside `ops` are still *block ids*
/// (`SimExpr::Const(block)`); the caller patches them to vertical op
/// indices once allocation has fixed the final op positions.
#[derive(Debug, Clone)]
pub struct EmittedCfg {
    /// The compiled RT operations, blocks laid out in CFG order.
    pub ops: Vec<RtOp>,
    /// `ops[block_ranges[b].clone()]` are block `b`'s RTs, terminator
    /// transfers included.
    pub block_ranges: Vec<std::ops::Range<usize>>,
    /// Selection and emission work counters.
    pub stats: EmitStats,
}

/// Compiles a control-flow graph: each block's statements compile exactly
/// as [`compile`] would, then the terminator becomes compare-and-branch /
/// jump RTs against the target's PC-writing templates.  A block whose
/// terminator falls through to the next block in layout order emits no
/// transfer at all, so a single-block (straight-line) CFG produces ops
/// byte-identical to [`compile`].
///
/// # Errors
///
/// Everything [`compile`] raises, plus [`CodegenError::NoBranchPath`]
/// when a terminator needs a control transfer but the target has no PC
/// (or no usable jump / conditional-branch template).
#[allow(clippy::too_many_arguments)]
pub fn compile_cfg<M: BddOps>(
    cfg: &Cfg,
    selector: &Selector,
    base: &TemplateBase,
    binding: &mut Binding,
    netlist: &Netlist,
    manager: &mut M,
    tables: &EmitTables,
    width: u16,
    probe: &mut Probe<'_>,
) -> Result<EmittedCfg, CodegenError> {
    let mut out = Vec::new();
    let mut stats = EmitStats::default();
    let mut ranges = Vec::with_capacity(cfg.blocks.len());
    let paths = branch_paths(base, netlist);
    for (i, block) in cfg.blocks.iter().enumerate() {
        let start = out.len();
        for stmt in &block.stmts {
            probe.begin("statement");
            let mark = binding.scratch_mark();
            let r = compile_split(
                stmt, selector, base, binding, netlist, manager, tables, width, &mut out,
                &mut stats, 0,
            );
            probe.end("statement");
            r?;
            stats.statements += 1;
            binding.release_scratch(mark)?;
        }
        match &block.term {
            Terminator::Halt => {}
            Terminator::Jump(t) => {
                if *t != i + 1 {
                    out.push(jump_op(require_paths(&paths)?, base, *t)?);
                }
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                let p = require_paths(&paths)?;
                probe.begin("statement");
                let mark = binding.scratch_mark();
                let r = emit_branch(
                    cond,
                    *then_to,
                    *else_to,
                    i + 1,
                    p,
                    selector,
                    base,
                    binding,
                    netlist,
                    manager,
                    tables,
                    width,
                    &mut out,
                    &mut stats,
                );
                probe.end("statement");
                r?;
                stats.statements += 1;
                binding.release_scratch(mark)?;
            }
        }
        ranges.push(start..out.len());
    }
    Ok(EmittedCfg {
        ops: out,
        block_ranges: ranges,
        stats,
    })
}

/// The target's control-transfer repertoire: its PC storage and the
/// extracted templates that write it.
struct BranchPaths {
    pc: StorageId,
    /// Unconditional `pc := #imm`.
    jump: Option<TemplateId>,
    /// `pc := #imm when reg != 0` — (template, tested register).
    brnz: Option<(TemplateId, StorageId)>,
    /// `pc := #imm when reg == 0`.
    brz: Option<(TemplateId, StorageId)>,
}

/// Scans the template base for PC-writing templates.  `None` when the
/// model declares no PC at all (a branchless machine).
fn branch_paths(base: &TemplateBase, netlist: &Netlist) -> Option<BranchPaths> {
    let pc = netlist.pc_storage()?.id;
    let mut p = BranchPaths {
        pc,
        jump: None,
        brnz: None,
        brz: None,
    };
    for t in base.templates() {
        if !matches!(&t.dest, Dest::Reg(d) if *d == pc) {
            continue;
        }
        match &t.pred {
            None => {
                if p.jump.is_none() {
                    p.jump = Some(t.id);
                }
            }
            // Only zero-comparing predicates over a plain register are
            // usable: lowered branch conditions are truth values, steered
            // by loading them into the tested register.
            Some(CondPred {
                test: Pattern::Reg(r),
                value: 0,
                eq,
            }) => {
                let slot = if *eq { &mut p.brz } else { &mut p.brnz };
                if slot.is_none() {
                    *slot = Some((t.id, *r));
                }
            }
            Some(_) => {}
        }
    }
    Some(p)
}

fn require_paths(paths: &Option<BranchPaths>) -> Result<&BranchPaths, CodegenError> {
    paths.as_ref().ok_or_else(|| CodegenError::NoBranchPath {
        detail: "the model declares no program counter, so no transfer templates exist".into(),
    })
}

/// An unconditional jump to block `target`.
///
/// The target immediate is *not* folded into the execution condition —
/// it is a block id here and is patched to an op/word index later, and
/// compaction schedules transfer ops into words of their own, so the
/// encoding bits never constrain a neighbour.
fn jump_op(paths: &BranchPaths, base: &TemplateBase, target: usize) -> Result<RtOp, CodegenError> {
    let tid = paths.jump.ok_or_else(|| CodegenError::NoBranchPath {
        detail: "no unconditional PC-write (jump) template".into(),
    })?;
    Ok(RtOp {
        template: tid,
        dest: DestSim::Loc(Loc::Reg(paths.pc)),
        expr: SimExpr::Const(target as u64),
        transfer: Some(Transfer::Always),
        cond: base.template(tid).cond,
    })
}

/// Emits a two-way branch: the condition value is computed into a scratch
/// word, reloaded into the register the conditional template tests, and a
/// conditional PC-write (plus, when neither side falls through, a jump)
/// steers control.  Polarity is chosen so the laid-out next block falls
/// through where the repertoire allows.
#[allow(clippy::too_many_arguments)]
fn emit_branch<M: BddOps>(
    cond: &FlatExpr,
    then_to: usize,
    else_to: usize,
    next: usize,
    paths: &BranchPaths,
    selector: &Selector,
    base: &TemplateBase,
    binding: &mut Binding,
    netlist: &Netlist,
    manager: &mut M,
    tables: &EmitTables,
    width: u16,
    out: &mut Vec<RtOp>,
    stats: &mut EmitStats,
) -> Result<(), CodegenError> {
    // brnz takes the `then` side (cond != 0), brz the `else` side.
    let use_nz = if else_to == next && paths.brnz.is_some() {
        true
    } else if then_to == next && paths.brz.is_some() {
        false
    } else if paths.brnz.is_some() {
        true
    } else if paths.brz.is_some() {
        false
    } else {
        return Err(CodegenError::NoBranchPath {
            detail: "no conditional PC-write template testing a register against zero".into(),
        });
    };
    let (tid, test_reg, taken_to, fall_to, eq) = if use_nz {
        let (t, r) = paths.brnz.expect("chosen above");
        (t, r, then_to, else_to, false)
    } else {
        let (t, r) = paths.brz.expect("chosen above");
        (t, r, else_to, then_to, true)
    };

    // Condition value into a scratch word...
    let tmp = binding.scratch()?;
    let stmt = FlatStmt {
        target: scratch_ref(tmp),
        value: cond.clone(),
    };
    compile_split(
        &stmt, selector, base, binding, netlist, manager, tables, width, out, stats, 0,
    )?;

    // ...then into the tested register.  Frequently redundant (the store
    // above usually leaves the value right there); the allocator's
    // residency pass deletes the pair when so.
    let dm = binding.data_mem();
    let expected = Loc::Reg(test_reg);
    let reload_tid = find_reload_tpl(base, netlist, &expected, dm)?;
    let mut rcond = base.template(reload_tid).cond;
    if let Pattern::MemRead(_, a) = &base.template(reload_tid).src {
        if let Pattern::Imm { hi, lo } = **a {
            let bits = tables.ibit_range(hi, lo);
            let eqv = manager.vector_equals(bits, tmp);
            rcond = manager.and(rcond, eqv);
        }
    }
    out.push(RtOp {
        template: reload_tid,
        dest: DestSim::Loc(expected.clone()),
        expr: SimExpr::MemRead(dm, Box::new(SimExpr::Const(tmp))),
        transfer: None,
        cond: rcond,
    });
    stats.reloads += 1;

    out.push(RtOp {
        template: tid,
        dest: DestSim::Loc(Loc::Reg(paths.pc)),
        expr: SimExpr::Const(taken_to as u64),
        transfer: Some(Transfer::Cond {
            test: SimExpr::Read(expected),
            value: 0,
            eq,
        }),
        cond: base.template(tid).cond,
    });
    if fall_to != next {
        out.push(jump_op(paths, base, fall_to)?);
    }
    Ok(())
}

/// Module-level twin of [`Emitter::find_reload`], for branch steering:
/// finds an unpredicated `reg := dm[#imm]`.
fn find_reload_tpl(
    base: &TemplateBase,
    netlist: &Netlist,
    expected: &Loc,
    dm: StorageId,
) -> Result<TemplateId, CodegenError> {
    for t in base.templates() {
        if t.pred.is_some() {
            continue;
        }
        if !matches!((&t.dest, expected), (Dest::Reg(r), Loc::Reg(l)) if r == l) {
            continue;
        }
        if let Pattern::MemRead(s, addr) = &t.src {
            if *s == dm && matches!(**addr, Pattern::Imm { .. }) {
                return Ok(t.id);
            }
        }
    }
    Err(CodegenError::NoBranchPath {
        detail: format!(
            "no reload into branch-test register `{}` from data memory",
            expected.render(netlist)
        ),
    })
}

/// How many times statement legalization may recurse through itself.
///
/// The worst well-formed chain is short (a multiply expansion whose
/// prologue materialises a constant, whose statements select directly);
/// the cap exists so a machine missing the building blocks (e.g. no
/// shifter to materialise constants with) fails fast instead of
/// re-deriving the same shapes forever.
const MAX_LEGALIZE_DEPTH: usize = 4;

/// Compiles one statement, splitting the expression tree through scratch
/// memory when no cover exists for the whole tree.
///
/// Tree parsing alone cannot cover e.g. `(a+b) + (c+d)` on a single-
/// accumulator machine — one operand of every operator pattern must be a
/// storage or memory leaf.  The paper resolves this with "an extension of
/// the scheduling technique from [8]": computed subtrees are evaluated
/// first and stored to memory, then re-read as memory operands.  Each
/// hoist strictly reduces nesting, so the recursion terminates; when a
/// single-operator tree over leaves still has no cover, [`legalize`]
/// gets one speculative shot at rewriting the statement into covered
/// shapes (subtraction via two's complement, multiplication via
/// shift-and-add, constants via shifts) before the selection error is
/// accepted as final.
#[allow(clippy::too_many_arguments)]
fn compile_split<M: BddOps>(
    stmt: &FlatStmt,
    selector: &Selector,
    base: &TemplateBase,
    binding: &mut Binding,
    netlist: &Netlist,
    manager: &mut M,
    tables: &EmitTables,
    width: u16,
    out: &mut Vec<RtOp>,
    stats: &mut EmitStats,
    depth: usize,
) -> Result<(), CodegenError> {
    let mut b = record_grammar::EtBuilder::new();
    let value = build_flat(&stmt.value, binding, width, &mut b)?;
    let target = target_addr(binding, &stmt.target)?;
    let addr = b.node(record_grammar::EtKind::Const(target), Vec::new());
    let et = record_grammar::Et::store(binding.data_mem(), addr, value, b);
    let err = match compile_statement(
        &et, selector, base, binding, netlist, manager, tables, stats,
    ) {
        Ok(ops) => {
            out.extend(ops);
            return Ok(());
        }
        Err(e) => e,
    };
    // Hoist a nested computation into scratch memory and retry.
    if let Some((hoisted, remainder)) = split_deepest(&stmt.value) {
        stats.splits += 1;
        let tmp = binding.scratch()?;
        let hoisted_stmt = FlatStmt {
            target: scratch_ref(tmp),
            value: hoisted,
        };
        compile_split(
            &hoisted_stmt,
            selector,
            base,
            binding,
            netlist,
            manager,
            tables,
            width,
            out,
            stats,
            depth,
        )?;
        let remainder_stmt = FlatStmt {
            target: stmt.target.clone(),
            value: replace_marker(&remainder, tmp),
        };
        return compile_split(
            &remainder_stmt,
            selector,
            base,
            binding,
            netlist,
            manager,
            tables,
            width,
            out,
            stats,
            depth,
        );
    }
    // Unsplittable and uncovered: speculatively legalize.  On failure,
    // roll back everything the attempt emitted or reserved and report
    // the *original* selection error — legalization only ever converts
    // failures into successes, never one failure class into another.
    if depth >= MAX_LEGALIZE_DEPTH {
        return Err(err);
    }
    let len0 = out.len();
    let mark0 = binding.scratch_mark();
    let Some(plan) = legalize(stmt, binding, width) else {
        return Err(err);
    };
    let mut run = || -> Result<(), CodegenError> {
        for sub in &plan {
            let mark = binding.scratch_mark();
            compile_split(
                sub,
                selector,
                base,
                binding,
                netlist,
                manager,
                tables,
                width,
                out,
                stats,
                depth + 1,
            )?;
            binding.release_scratch(mark)?;
        }
        Ok(())
    };
    if run().is_err() {
        out.truncate(len0);
        binding.release_scratch(mark0)?;
        return Err(err);
    }
    Ok(())
}

/// Store address of a statement target: named variables resolve through
/// the binding, `$scratch` temporaries carry their address directly.
fn target_addr(binding: &Binding, r: &record_ir::Ref) -> Result<u64, CodegenError> {
    if r.name.starts_with("$scratch") {
        Ok(r.offset)
    } else {
        binding.addr_of(r)
    }
}

/// A reference naming scratch word `addr`.
fn scratch_ref(addr: u64) -> record_ir::Ref {
    record_ir::Ref {
        name: format!("$scratch{addr}"),
        offset: addr,
    }
}

/// Rewrites an unsplittable, uncovered statement into a sequence of
/// statements the machine may be able to cover (the caller compiles the
/// plan speculatively and rolls back on failure):
///
/// * `t = a - b` / `t = -a` — two's complement: `a + (!b + 1)`.
/// * `t = a * b` — shift-and-add over the word width, using scratch
///   cells for the shifting operands, the running sum and the `-(b & 1)`
///   mask (branch-free Horner form needing only `and`, `not`,
///   `add ±const 1`, `shl`, `shr`).
/// * `t = c` — constant materialisation by shifting: `width` left
///   shifts force `t` to zero from any prior value, then the bits of
///   `c` are rebuilt MSB-first with shift/increment steps.
/// * any remaining statement with an embedded constant — hoist one
///   constant into a scratch cell (materialised by the rule above) so a
///   memory-operand rule can cover the rest.
fn legalize(stmt: &FlatStmt, binding: &mut Binding, width: u16) -> Option<Vec<FlatStmt>> {
    use record_ir::FlatExpr as E;
    use record_rtl::OpKind as Op;
    let neg = |e: &E| {
        E::Binary(
            Op::Add,
            Box::new(E::Unary(Op::Not, Box::new(e.clone()))),
            Box::new(E::Const(1)),
        )
    };
    match &stmt.value {
        E::Binary(Op::Sub, a, b) => Some(vec![FlatStmt {
            target: stmt.target.clone(),
            value: E::Binary(Op::Add, a.clone(), Box::new(neg(b))),
        }]),
        E::Unary(Op::Neg, a) => Some(vec![FlatStmt {
            target: stmt.target.clone(),
            value: neg(a),
        }]),
        E::Binary(Op::Mul, a, b) => {
            let steps = width.min(64);
            let sa = scratch_ref(binding.scratch().ok()?);
            let sb = scratch_ref(binding.scratch().ok()?);
            let one = scratch_ref(binding.scratch().ok()?);
            let mask = scratch_ref(binding.scratch().ok()?);
            let res = scratch_ref(binding.scratch().ok()?);
            let ld = |r: &record_ir::Ref| E::Load(r.clone());
            let mut plan = vec![
                FlatStmt {
                    target: sa.clone(),
                    value: (**a).clone(),
                },
                FlatStmt {
                    target: sb.clone(),
                    value: (**b).clone(),
                },
                FlatStmt {
                    target: one.clone(),
                    value: E::Const(1),
                },
                FlatStmt {
                    target: res.clone(),
                    value: E::Const(0),
                },
            ];
            for _ in 0..steps {
                // mask = -(sb & 1); res += sa & mask; sa <<= 1; sb >>= 1.
                plan.push(FlatStmt {
                    target: mask.clone(),
                    value: neg(&E::Binary(Op::And, Box::new(ld(&sb)), Box::new(ld(&one)))),
                });
                plan.push(FlatStmt {
                    target: res.clone(),
                    value: E::Binary(
                        Op::Add,
                        Box::new(ld(&res)),
                        Box::new(E::Binary(Op::And, Box::new(ld(&sa)), Box::new(ld(&mask)))),
                    ),
                });
                plan.push(FlatStmt {
                    target: sa.clone(),
                    value: E::Binary(Op::Shl, Box::new(ld(&sa)), Box::new(E::Const(1))),
                });
                plan.push(FlatStmt {
                    target: sb.clone(),
                    value: E::Binary(Op::Shr, Box::new(ld(&sb)), Box::new(E::Const(1))),
                });
            }
            plan.push(FlatStmt {
                target: stmt.target.clone(),
                value: ld(&res),
            });
            Some(plan)
        }
        E::Const(c) => {
            let bits = width.min(64);
            let mask = if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let c = (*c as u64) & mask;
            let shl1 = |t: &record_ir::Ref| FlatStmt {
                target: t.clone(),
                value: E::Binary(Op::Shl, Box::new(E::Load(t.clone())), Box::new(E::Const(1))),
            };
            // `width` left shifts clear the target from any prior value
            // (no load-immediate path needed), then shift/increment
            // rebuilds `c` MSB-first.
            let mut plan: Vec<FlatStmt> = (0..bits).map(|_| shl1(&stmt.target)).collect();
            for i in (0..u64::from(bits)).rev().take_while(|_| c != 0) {
                if i < 63 && c >> (i + 1) != 0 {
                    plan.push(shl1(&stmt.target));
                }
                if (c >> i) & 1 == 1 {
                    plan.push(FlatStmt {
                        target: stmt.target.clone(),
                        value: E::Binary(
                            Op::Add,
                            Box::new(E::Load(stmt.target.clone())),
                            Box::new(E::Const(1)),
                        ),
                    });
                }
            }
            Some(plan)
        }
        value => {
            // Hoist one embedded constant into a scratch cell; the
            // recursion materialises it and retries with a memory operand.
            let (hoisted, c) = hoist_first_const(value)?;
            let tmp = scratch_ref(binding.scratch().ok()?);
            Some(vec![
                FlatStmt {
                    target: tmp.clone(),
                    value: E::Const(c),
                },
                FlatStmt {
                    target: stmt.target.clone(),
                    value: replace_const_marker(&hoisted, &tmp),
                },
            ])
        }
    }
}

/// Replaces the first (leftmost-outermost) `Const` leaf of a computed
/// expression with the split marker; returns the rewritten expression and
/// the constant.  `None` when the expression has no constant leaf to
/// hoist (then legalization has nothing left to try).
fn hoist_first_const(e: &record_ir::FlatExpr) -> Option<(record_ir::FlatExpr, i64)> {
    use record_ir::FlatExpr as E;
    let marker = || {
        E::Load(record_ir::Ref {
            name: SPLIT_MARKER.to_owned(),
            offset: 0,
        })
    };
    match e {
        E::Unary(op, a) => {
            if let E::Const(c) = **a {
                return Some((E::Unary(*op, Box::new(marker())), c));
            }
            let (ra, c) = hoist_first_const(a)?;
            Some((E::Unary(*op, Box::new(ra)), c))
        }
        E::Binary(op, l, r) => {
            if let E::Const(c) = **l {
                return Some((E::Binary(*op, Box::new(marker()), r.clone()), c));
            }
            if let E::Const(c) = **r {
                return Some((E::Binary(*op, l.clone(), Box::new(marker())), c));
            }
            if let Some((rl, c)) = hoist_first_const(l) {
                return Some((E::Binary(*op, Box::new(rl), r.clone()), c));
            }
            let (rr, c) = hoist_first_const(r)?;
            Some((E::Binary(*op, l.clone(), Box::new(rr)), c))
        }
        _ => None,
    }
}

/// Replaces the split marker with a load of `tmp`.
fn replace_const_marker(e: &record_ir::FlatExpr, tmp: &record_ir::Ref) -> record_ir::FlatExpr {
    use record_ir::FlatExpr as E;
    match e {
        E::Load(r) if r.name == SPLIT_MARKER => E::Load(tmp.clone()),
        E::Unary(op, a) => E::Unary(*op, Box::new(replace_const_marker(a, tmp))),
        E::Binary(op, l, r) => E::Binary(
            *op,
            Box::new(replace_const_marker(l, tmp)),
            Box::new(replace_const_marker(r, tmp)),
        ),
        other => other.clone(),
    }
}

/// Marker name used while splitting; replaced by a scratch-address load.
const SPLIT_MARKER: &str = "$split";

/// Splits off the deepest-leftmost computed subtree that has a computed
/// parent; returns `(hoisted, remainder-with-marker)`.
fn split_deepest(e: &record_ir::FlatExpr) -> Option<(record_ir::FlatExpr, record_ir::FlatExpr)> {
    use record_ir::FlatExpr;
    fn is_computed(e: &FlatExpr) -> bool {
        matches!(e, FlatExpr::Unary(..) | FlatExpr::Binary(..))
    }
    fn rec(e: &FlatExpr) -> Option<(FlatExpr, FlatExpr)> {
        match e {
            FlatExpr::Binary(op, l, r) => {
                if let Some((h, rem)) = rec(l) {
                    return Some((h, FlatExpr::Binary(*op, Box::new(rem), r.clone())));
                }
                if let Some((h, rem)) = rec(r) {
                    return Some((h, FlatExpr::Binary(*op, l.clone(), Box::new(rem))));
                }
                // No nested splits below: hoist a computed child, if any.
                for (child, left) in [(l, true), (r, false)] {
                    if is_computed(child) {
                        let marker = FlatExpr::Load(record_ir::Ref {
                            name: SPLIT_MARKER.to_owned(),
                            offset: 0,
                        });
                        let rem = if left {
                            FlatExpr::Binary(*op, Box::new(marker), r.clone())
                        } else {
                            FlatExpr::Binary(*op, l.clone(), Box::new(marker))
                        };
                        return Some(((**child).clone(), rem));
                    }
                }
                None
            }
            FlatExpr::Unary(op, a) => {
                if let Some((h, rem)) = rec(a) {
                    return Some((h, FlatExpr::Unary(*op, Box::new(rem))));
                }
                if is_computed(a) {
                    let marker = FlatExpr::Load(record_ir::Ref {
                        name: SPLIT_MARKER.to_owned(),
                        offset: 0,
                    });
                    return Some(((**a).clone(), FlatExpr::Unary(*op, Box::new(marker))));
                }
                None
            }
            _ => None,
        }
    }
    rec(e)
}

/// Replaces the split marker with a load of the scratch address.
fn replace_marker(e: &record_ir::FlatExpr, tmp: u64) -> record_ir::FlatExpr {
    use record_ir::FlatExpr;
    match e {
        FlatExpr::Load(r) if r.name == SPLIT_MARKER => FlatExpr::Load(record_ir::Ref {
            name: format!("$scratch{tmp}"),
            offset: tmp,
        }),
        FlatExpr::Unary(op, a) => FlatExpr::Unary(*op, Box::new(replace_marker(a, tmp))),
        FlatExpr::Binary(op, l, r) => FlatExpr::Binary(
            *op,
            Box::new(replace_marker(l, tmp)),
            Box::new(replace_marker(r, tmp)),
        ),
        other => other.clone(),
    }
}

/// Builds an ET value from a flat expression, resolving `$scratch` names
/// to raw addresses.
fn build_flat(
    e: &record_ir::FlatExpr,
    binding: &Binding,
    width: u16,
    b: &mut record_grammar::EtBuilder,
) -> Result<record_grammar::NodeIdx, CodegenError> {
    use record_grammar::EtKind;
    use record_ir::FlatExpr;
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    Ok(match e {
        FlatExpr::Const(c) => b.leaf(EtKind::Const((*c as u64) & mask)),
        FlatExpr::Load(r) if r.name.starts_with("$scratch") => {
            let a = b.leaf(EtKind::Const(r.offset));
            b.node(EtKind::MemRead(binding.data_mem()), vec![a])
        }
        FlatExpr::Load(r) => {
            let addr = binding.addr_of(r)?;
            let a = b.leaf(EtKind::Const(addr));
            b.node(EtKind::MemRead(binding.storage_of(r)), vec![a])
        }
        FlatExpr::Unary(op, a) => {
            let an = build_flat(a, binding, width, b)?;
            b.node(EtKind::Op(*op), vec![an])
        }
        FlatExpr::Binary(op, l, r) => {
            let ln = build_flat(l, binding, width, b)?;
            let rn = build_flat(r, binding, width, b)?;
            b.node(EtKind::Op(*op), vec![ln, rn])
        }
    })
}

/// Selects and emits a single expression tree, accumulating work
/// counters into `stats`.
///
/// # Errors
///
/// See [`compile`].
#[allow(clippy::too_many_arguments)]
pub fn compile_statement<M: BddOps>(
    et: &Et,
    selector: &Selector,
    base: &TemplateBase,
    binding: &mut Binding,
    netlist: &Netlist,
    manager: &mut M,
    tables: &EmitTables,
    stats: &mut EmitStats,
) -> Result<Vec<RtOp>, CodegenError> {
    let t0 = Instant::now();
    let selected = selector.select(et);
    stats.select_ns += t0.elapsed().as_nanos() as u64;
    let cover = selected.map_err(|e| CodegenError::Select {
        missing_op: e.missing_op,
        message: e.to_string(),
    })?;
    stats.select.absorb(&cover.stats);
    let t1 = Instant::now();
    let mut emitter = Emitter::new(
        et, &cover, selector, base, binding, netlist, manager, tables,
    );
    let result = emitter.run();
    stats.emit_ns += t1.elapsed().as_nanos() as u64;
    stats.spill_stores += emitter.spill_stores;
    stats.reloads += emitter.reloads;
    result
}

/// Instruction fields encoding register-file cell choices.
#[derive(Debug, Clone, Copy)]
struct RfFields {
    write: Option<(u16, u16)>,
    read: Option<(u16, u16)>,
}

/// Per-target emission tables, computed once at retarget time.
///
/// Before the retarget artifact froze these were rebuilt on every
/// compile: `rf_fields` walked the netlist per `Emitter`, and folding an
/// instruction field into an execution condition formatted an `I[b]`
/// name, hashed it and looked the variable up — per bit, per emitted op.
/// Both are target-level constants, so they live here now: the
/// register-file address fields and the positive literal of every
/// instruction-word bit (frozen-base BDD handles, valid in every session
/// overlay).
#[derive(Debug, Clone)]
pub struct EmitTables {
    rf: HashMap<StorageId, RfFields>,
    ibits: Vec<record_bdd::Bdd>,
}

impl EmitTables {
    /// Builds the tables against the retarget-time manager (the literals
    /// must be created before [`record_bdd::BddManager::freeze`] so they
    /// are frozen handles).
    pub fn build<M: BddOps>(netlist: &Netlist, manager: &mut M, iword_width: u16) -> EmitTables {
        let ibits = (0..iword_width)
            .map(|b| manager.var(&format!("I[{b}]")))
            .collect();
        EmitTables {
            rf: rf_fields(netlist),
            ibits,
        }
    }

    /// Positive literals of instruction bits `lo..=hi` (`lo` first).
    fn ibit_range(&self, hi: u16, lo: u16) -> &[record_bdd::Bdd] {
        &self.ibits[lo as usize..=hi as usize]
    }
}

/// Extracts the address fields of every register file in the netlist.
fn rf_fields(netlist: &Netlist) -> HashMap<StorageId, RfFields> {
    use record_netlist::{DataExpr, ElabKind, Net};
    let mut out = HashMap::new();
    for s in netlist.storages() {
        if s.kind != StorageKind::RegFile {
            continue;
        }
        let def = netlist.def_of(s.inst);
        let ElabKind::Memory { reads, writes, .. } = &def.kind else {
            continue;
        };
        let field_of = |addr: &DataExpr| -> Option<(u16, u16)> {
            let DataExpr::Port(p) = addr else { return None };
            match netlist.driver_of(s.inst, *p) {
                Some(Net::IField { hi, lo }) => Some((*hi, *lo)),
                _ => None,
            }
        };
        out.insert(
            s.id,
            RfFields {
                write: writes.first().and_then(|w| field_of(&w.addr)),
                read: reads.first().and_then(|r| field_of(&r.addr)),
            },
        );
    }
    out
}

type Value = (NodeIdx, NonTermId);

struct Emitter<'a, M: BddOps> {
    et: &'a Et,
    cover: &'a Cover,
    selector: &'a Selector,
    base: &'a TemplateBase,
    binding: &'a mut Binding,
    netlist: &'a Netlist,
    manager: &'a mut M,
    tables: &'a EmitTables,
    /// Field constraints (hi, lo, value) collected for the op being built.
    field_constraints: Vec<(u16, u16, u64)>,
    /// Producer app index per value.
    producer: HashMap<Value, usize>,
    /// Current location of produced, not-yet-consumed values.
    value_loc: HashMap<Value, Loc>,
    /// Which value currently occupies a register-like location.
    holder: HashMap<Loc, Value>,
    /// Free register-file cells.
    rf_free: HashMap<StorageId, Vec<u64>>,
    /// Cells we allocated (to distinguish temp cells from variable cells).
    rf_temp: HashMap<Value, (StorageId, u64)>,
    out: Vec<RtOp>,
    /// Spill stores emitted (reported through [`EmitStats`]).
    spill_stores: u64,
    /// Reloads emitted (reported through [`EmitStats`]).
    reloads: u64,
}

impl<'a, M: BddOps> Emitter<'a, M> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        et: &'a Et,
        cover: &'a Cover,
        selector: &'a Selector,
        base: &'a TemplateBase,
        binding: &'a mut Binding,
        netlist: &'a Netlist,
        manager: &'a mut M,
        tables: &'a EmitTables,
    ) -> Self {
        let mut producer = HashMap::new();
        for (i, app) in cover.apps.iter().enumerate() {
            producer.insert((app.at, app.nt), i);
        }
        let mut rf_free = HashMap::new();
        for s in netlist.storages() {
            if s.kind == StorageKind::RegFile {
                rf_free.insert(s.id, (0..s.size).rev().collect());
            }
        }
        Emitter {
            et,
            cover,
            selector,
            base,
            binding,
            netlist,
            manager,
            tables,
            field_constraints: Vec::new(),
            producer,
            value_loc: HashMap::new(),
            holder: HashMap::new(),
            rf_free,
            rf_temp: HashMap::new(),
            out: Vec::new(),
            spill_stores: 0,
            reloads: 0,
        }
    }

    fn run(&mut self) -> Result<Vec<RtOp>, CodegenError> {
        let root = self.cover.apps.len() - 1;
        self.emit_app(root)?;
        Ok(std::mem::take(&mut self.out))
    }

    fn grammar(&self) -> &record_grammar::TreeGrammar {
        self.selector.grammar()
    }

    fn emit_app(&mut self, idx: usize) -> Result<(), CodegenError> {
        let app = self.cover.apps[idx].clone();
        let rule = self.grammar().rule(app.rule).clone();
        match rule.origin {
            RuleOrigin::Stop(_) => {
                let loc = match self.et.kind(app.at) {
                    EtKind::RegLeaf(s) => Loc::Reg(s),
                    EtKind::RfLeaf(s, c) => Loc::Rf(s, c as u64),
                    other => unreachable!("stop rule at non-leaf {other:?}"),
                };
                self.produce((app.at, app.nt), loc);
                Ok(())
            }
            RuleOrigin::Start => {
                let (nt, node) = app.operands[0];
                let p = self.producer[&(node, nt)];
                self.emit_app(p)?;
                // The operand's derivation wrote the destination register;
                // consume it.
                self.consume((node, nt));
                Ok(())
            }
            RuleOrigin::Template(tid) => self.emit_template(&app, tid),
        }
    }

    fn emit_template(&mut self, app: &RuleApp, tid: TemplateId) -> Result<(), CodegenError> {
        let rule = self.grammar().rule(app.rule).clone();
        self.field_constraints.clear();

        // 1. Order operand evaluation: an operand whose derivation clobbers
        //    the register a sibling's value will occupy goes first.
        let order = self.operand_order(app);
        for &oi in &order {
            let (nt, node) = app.operands[oi];
            let p = self.producer[&(node, nt)];
            self.emit_app(p)?;
        }

        // 2. Make sure every operand is where the pattern expects it
        //    (reload spilled values).  Operands of this very operation are
        //    protected: they are read from pre-state and must not be
        //    spilled on each other's behalf — if that is unavoidable the
        //    conflict is cyclic and unimplementable on this data path.
        let protected: Vec<Value> = app.operands.iter().map(|&(nt, node)| (node, nt)).collect();
        for &(nt, node) in &app.operands {
            self.ensure_in_place((node, nt), &protected)?;
        }

        // 3. Build the concrete expression and destination.
        let mut operand_iter = app.operands.iter();
        let (dest, expr) = match &rule.rhs {
            GPat::T(TermKey::Store(s), kids) => {
                let root_children = self.et.children(app.at);
                let addr = self.sim_of(&kids[0], root_children[0], &mut operand_iter)?;
                let val = self.sim_of(&kids[1], root_children[1], &mut operand_iter)?;
                (DestSim::MemAt(*s, addr), val)
            }
            rhs => {
                let expr = self.sim_of(rhs, app.at, &mut operand_iter)?;
                let dest_loc = self.dest_loc_for(app)?;
                (DestSim::Loc(dest_loc), expr)
            }
        };

        // 4. Spill whatever pending value occupies the destination — unless
        //    it is one of this op's own operands (those are read from
        //    pre-state, so overwriting is safe).
        if let DestSim::Loc(loc) = &dest {
            let loc = loc.clone();
            self.evict(&loc, &protected)?;
        }

        // 5. Emit with the immediate-field values folded into the
        //    execution condition (the binary *partial instruction* of the
        //    paper includes operand fields; compaction relies on it).
        if let DestSim::Loc(Loc::Rf(s, c)) = &dest {
            if let Some(f) = self.tables.rf.get(s).and_then(|f| f.write) {
                self.field_constraints.push((f.0, f.1, *c));
            }
        }
        let cond = self.conjoin_fields(self.base.template(tid).cond);
        self.out.push(RtOp {
            template: tid,
            dest: dest.clone(),
            expr,
            transfer: None,
            cond,
        });
        // Operands are consumed by this op.
        for &(nt, node) in &app.operands {
            self.consume((node, nt));
        }
        if let DestSim::Loc(loc) = dest {
            self.produce((app.at, app.nt), loc);
        }
        Ok(())
    }

    /// Conjoins the collected field constraints into `cond` and clears
    /// them.  The bit literals come precomputed from the frozen
    /// [`EmitTables`], so this is pure BDD work — no name formatting, no
    /// per-bit allocation.
    fn conjoin_fields(&mut self, cond: record_bdd::Bdd) -> record_bdd::Bdd {
        let mut acc = cond;
        for (hi, lo, v) in self.field_constraints.drain(..) {
            let bits = self.tables.ibit_range(hi, lo);
            let eq = self.manager.vector_equals(bits, v);
            acc = self.manager.and(acc, eq);
        }
        acc
    }

    /// Register the value as live at `loc`.
    fn produce(&mut self, v: Value, loc: Loc) {
        self.value_loc.insert(v, loc.clone());
        self.holder.insert(loc, v);
    }

    /// The value has been consumed: free its location (and temp cell).
    fn consume(&mut self, v: Value) {
        if let Some(loc) = self.value_loc.remove(&v) {
            if self.holder.get(&loc) == Some(&v) {
                self.holder.remove(&loc);
            }
        }
        if let Some((s, c)) = self.rf_temp.remove(&v) {
            self.rf_free.get_mut(&s).expect("rf known").push(c);
        }
    }

    /// Destination location for a non-store template application.
    fn dest_loc_for(&mut self, app: &RuleApp) -> Result<Loc, CodegenError> {
        let rule = self.grammar().rule(app.rule);
        match self.grammar().nonterm_kind(rule.lhs) {
            NonTermKind::Reg(s) => Ok(Loc::Reg(s)),
            NonTermKind::Port(p) => Ok(Loc::Port(p)),
            NonTermKind::RegFile(s) => {
                // If this application produces the final ET value and the ET
                // destination is a specific cell, write it directly.
                if let EtDest::RegFile(ds, cell) = self.et.dest() {
                    if *ds == s && self.is_final_value(app) {
                        return Ok(Loc::Rf(s, *cell as u64));
                    }
                }
                let cell = self.rf_free.get_mut(&s).and_then(Vec::pop).ok_or_else(|| {
                    CodegenError::OutOfStorage {
                        storage: self.netlist.storage(s).name.clone(),
                        detail: "register file has no free cell".to_owned(),
                    }
                })?;
                self.rf_temp.insert((app.at, app.nt), (s, cell));
                Ok(Loc::Rf(s, cell))
            }
            NonTermKind::Start => unreachable!("templates never derive START directly"),
        }
    }

    /// Is this application the one whose value the start rule consumes?
    fn is_final_value(&self, app: &RuleApp) -> bool {
        let root = self.cover.apps.last().expect("cover non-empty");
        root.operands
            .first()
            .is_some_and(|&(nt, node)| nt == app.nt && node == app.at)
    }

    /// Chooses operand evaluation order to avoid clobbering conflicts.
    fn operand_order(&self, app: &RuleApp) -> Vec<usize> {
        let n = app.operands.len();
        let mut order: Vec<usize> = (0..n).collect();
        if n < 2 {
            return order;
        }
        // Target register of each operand and clobber set of its subtree.
        let targets: Vec<Option<Loc>> = app
            .operands
            .iter()
            .map(|&(nt, _)| match self.grammar().nonterm_kind(nt) {
                NonTermKind::Reg(s) => Some(Loc::Reg(s)),
                _ => None,
            })
            .collect();
        let clobbers: Vec<Vec<Loc>> = app
            .operands
            .iter()
            .map(|&(nt, node)| {
                let mut set = Vec::new();
                self.collect_clobbers((node, nt), &mut set);
                set
            })
            .collect();
        // Pairwise: if evaluating j clobbers i's target, j must go first.
        order.sort_by(|&a, &b| {
            let a_kills_b = targets[b].as_ref().is_some_and(|t| clobbers[a].contains(t));
            let b_kills_a = targets[a].as_ref().is_some_and(|t| clobbers[b].contains(t));
            match (a_kills_b, b_kills_a) {
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                // Tie / cycle: deeper subtree first (Sethi-Ullman flavour).
                _ => clobbers[b].len().cmp(&clobbers[a].len()),
            }
        });
        order
    }

    /// Registers written while deriving `v`.
    fn collect_clobbers(&self, v: Value, out: &mut Vec<Loc>) {
        let Some(&p) = self.producer.get(&v) else {
            return;
        };
        let app = &self.cover.apps[p];
        let rule = self.grammar().rule(app.rule);
        if matches!(rule.origin, RuleOrigin::Template(_)) {
            if let NonTermKind::Reg(s) = self.grammar().nonterm_kind(app.nt) {
                out.push(Loc::Reg(s));
            }
        }
        for &(nt, node) in &app.operands {
            if (node, nt) != v {
                self.collect_clobbers((node, nt), out);
            }
        }
    }

    /// Spills the pending value occupying `loc`, if any.  If that value is
    /// protected (an operand of the operation being emitted), the eviction
    /// is either safely skipped (for writes: operands read pre-state) or a
    /// cyclic conflict (for reloads) — `protected` holders are never
    /// spilled, the caller decides what skipping means.
    fn evict(&mut self, loc: &Loc, protected: &[Value]) -> Result<(), CodegenError> {
        if matches!(loc, Loc::Port(_)) {
            return Ok(()); // ports are write-only, nothing to preserve
        }
        let Some(&victim) = self.holder.get(loc) else {
            return Ok(());
        };
        if protected.contains(&victim) {
            return Ok(());
        }
        // Find a store template for this register.
        let (store_tid, spill_reg) = self.find_spill_store(loc)?;
        let addr = self.binding.scratch()?;
        if let Dest::Mem(_, Pattern::Imm { hi, lo }) = &self.base.template(store_tid).dest {
            self.field_constraints.push((*hi, *lo, addr));
        }
        let cond = self.conjoin_fields(self.base.template(store_tid).cond);
        self.out.push(RtOp {
            template: store_tid,
            dest: DestSim::MemAt(self.binding.data_mem(), SimExpr::Const(addr)),
            expr: SimExpr::Read(spill_reg),
            transfer: None,
            cond,
        });
        self.spill_stores += 1;
        self.holder.remove(loc);
        self.value_loc
            .insert(victim, Loc::Mem(self.binding.data_mem(), addr));
        Ok(())
    }

    /// Reloads `v` into the register its consumer expects, spilling the
    /// current occupant if necessary.
    fn ensure_in_place(&mut self, v: Value, protected: &[Value]) -> Result<(), CodegenError> {
        let loc = self
            .value_loc
            .get(&v)
            .cloned()
            .ok_or_else(|| CodegenError::Select {
                message: "internal: operand value has no location".into(),
                missing_op: None,
            })?;
        let expected = match self.grammar().nonterm_kind(v.1) {
            NonTermKind::Reg(s) => Loc::Reg(s),
            // Regfile/port operands: any cell of the file is fine.
            _ => return Ok(()),
        };
        if loc == expected {
            return Ok(());
        }
        let Loc::Mem(dm, addr) = loc else {
            // Value sits in a different register than expected: can only
            // happen through spilling, which always goes via memory.
            return Ok(());
        };
        // A protected value occupying the reload target means two operands
        // of one operation need the same register: unimplementable.
        if self
            .holder
            .get(&expected)
            .is_some_and(|h| protected.contains(h) && *h != v)
        {
            return Err(CodegenError::NoSpillPath {
                loc: expected.render(self.netlist),
                at_op: self.out.len(),
                detail: "cyclic register conflict: two operands need the register".into(),
            });
        }
        let reload_tid = self.find_reload(&expected, dm)?;
        self.evict(&expected, protected)?;
        if let Pattern::MemRead(_, a) = &self.base.template(reload_tid).src {
            if let Pattern::Imm { hi, lo } = **a {
                self.field_constraints.push((hi, lo, addr));
            }
        }
        let cond = self.conjoin_fields(self.base.template(reload_tid).cond);
        self.out.push(RtOp {
            template: reload_tid,
            dest: DestSim::Loc(expected.clone()),
            expr: SimExpr::MemRead(dm, Box::new(SimExpr::Const(addr))),
            transfer: None,
            cond,
        });
        self.reloads += 1;
        self.produce(v, expected);
        Ok(())
    }

    /// Finds `dm[#imm] := reg` for the register behind `loc`.
    fn find_spill_store(&self, loc: &Loc) -> Result<(TemplateId, Loc), CodegenError> {
        let dm = self.binding.data_mem();
        for t in self.base.templates() {
            let Dest::Mem(s, Pattern::Imm { .. }) = &t.dest else {
                continue;
            };
            if *s != dm {
                continue;
            }
            let matches = match (&t.src, loc) {
                (Pattern::Reg(r), Loc::Reg(l)) => r == l,
                (Pattern::RegFile(r), Loc::Rf(l, _)) => r == l,
                _ => false,
            };
            if matches {
                return Ok((t.id, loc.clone()));
            }
        }
        Err(CodegenError::NoSpillPath {
            loc: loc.render(self.netlist),
            at_op: self.out.len(),
            detail: "no store template from the register to data memory".into(),
        })
    }

    /// Finds `reg := dm[#imm]`.
    fn find_reload(&self, expected: &Loc, dm: StorageId) -> Result<TemplateId, CodegenError> {
        for t in self.base.templates() {
            let dest_ok = match (&t.dest, expected) {
                (Dest::Reg(r), Loc::Reg(l)) => r == l,
                (Dest::RegFile(r), Loc::Rf(l, _)) => r == l,
                _ => false,
            };
            if !dest_ok {
                continue;
            }
            if let Pattern::MemRead(s, addr) = &t.src {
                if *s == dm && matches!(**addr, Pattern::Imm { .. }) {
                    return Ok(t.id);
                }
            }
        }
        Err(CodegenError::NoSpillPath {
            loc: expected.render(self.netlist),
            at_op: self.out.len(),
            detail: "no reload template into the register from data memory".into(),
        })
    }

    /// Builds the concrete [`SimExpr`] for pattern `pat` matched at ET node
    /// `node`; `operands` yields the operand list in pattern order.
    fn sim_of(
        &mut self,
        pat: &GPat,
        node: NodeIdx,
        operands: &mut std::slice::Iter<'_, (NonTermId, NodeIdx)>,
    ) -> Result<SimExpr, CodegenError> {
        match pat {
            GPat::NT(_) => {
                let &(nt, at) = operands.next().expect("operand list matches pattern");
                let loc =
                    self.value_loc
                        .get(&(at, nt))
                        .cloned()
                        .ok_or_else(|| CodegenError::Select {
                            message: "internal: operand not materialised".into(),
                            missing_op: None,
                        })?;
                if let Loc::Rf(s, c) = &loc {
                    if let Some(f) = self.tables.rf.get(s).and_then(|f| f.read) {
                        self.field_constraints.push((f.0, f.1, *c));
                    }
                }
                Ok(SimExpr::Read(loc))
            }
            GPat::T(key, kids) => {
                let children = self.et.children(node);
                match key {
                    TermKey::ConstVal(v) => Ok(SimExpr::Const(*v)),
                    TermKey::Imm { hi, lo } => match self.et.kind(node) {
                        EtKind::Const(v) => {
                            self.field_constraints.push((*hi, *lo, v));
                            Ok(SimExpr::Const(v))
                        }
                        other => unreachable!("imm matched non-const {other:?}"),
                    },
                    TermKey::RegLeaf(s) => Ok(SimExpr::Read(Loc::Reg(*s))),
                    TermKey::RfLeaf(s) => match self.et.kind(node) {
                        EtKind::RfLeaf(_, c) => {
                            if let Some(f) = self.tables.rf.get(s).and_then(|f| f.read) {
                                self.field_constraints.push((f.0, f.1, c as u64));
                            }
                            Ok(SimExpr::Read(Loc::Rf(*s, c as u64)))
                        }
                        other => unreachable!("rf leaf matched {other:?}"),
                    },
                    TermKey::PortLeaf(p) => Ok(SimExpr::Read(Loc::Port(*p))),
                    TermKey::MemRead(s) => {
                        let addr = self.sim_of(&kids[0], children[0], operands)?;
                        Ok(SimExpr::MemRead(*s, Box::new(addr)))
                    }
                    TermKey::Op(op) => {
                        let mut args = Vec::with_capacity(kids.len());
                        for (k, &c) in kids.iter().zip(children) {
                            args.push(self.sim_of(k, c, operands)?);
                        }
                        Ok(SimExpr::Op(*op, args))
                    }
                    TermKey::Assign(_) | TermKey::Store(_) => {
                        unreachable!("designated root keys handled by caller")
                    }
                }
            }
        }
    }
}
