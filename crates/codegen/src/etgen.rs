//! Shaping flat statements into expression trees over target storages.

use crate::binding::Binding;
use crate::error::CodegenError;
use record_grammar::{Et, EtBuilder, EtKind, NodeIdx};
use record_ir::{FlatExpr, FlatStmt};

/// Builds the destination-annotated ET for one statement.
///
/// Variable reads become `MemRead(data_mem, Const(addr))` subtrees and the
/// target becomes a `Store` root — direct addressing, as in the paper's
/// basic-block evaluation.  Constants are masked to `width` bits
/// (two's-complement fixed point).
///
/// # Errors
///
/// Propagates [`CodegenError::UnboundVariable`] from the binding.
pub fn build_et(stmt: &FlatStmt, binding: &Binding, width: u16) -> Result<Et, CodegenError> {
    let mut b = EtBuilder::new();
    let value = build_expr(&stmt.value, binding, width, &mut b)?;
    let addr = binding.addr_of(&stmt.target)?;
    let addr_node = b.leaf(EtKind::Const(addr));
    Ok(Et::store(binding.data_mem(), addr_node, value, b))
}

fn mask(width: u16) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    }
}

fn build_expr(
    e: &FlatExpr,
    binding: &Binding,
    width: u16,
    b: &mut EtBuilder,
) -> Result<NodeIdx, CodegenError> {
    Ok(match e {
        FlatExpr::Const(c) => b.leaf(EtKind::Const((*c as u64) & mask(width))),
        FlatExpr::Load(r) => {
            let addr = binding.addr_of(r)?;
            let a = b.leaf(EtKind::Const(addr));
            b.node(EtKind::MemRead(binding.storage_of(r)), vec![a])
        }
        FlatExpr::Unary(op, a) => {
            let an = build_expr(a, binding, width, b)?;
            b.node(EtKind::Op(*op), vec![an])
        }
        FlatExpr::Binary(op, l, r) => {
            let ln = build_expr(l, binding, width, b)?;
            let rn = build_expr(r, binding, width, b)?;
            b.node(EtKind::Op(*op), vec![ln, rn])
        }
    })
}
