//! Extending the template base with application-specific rewrite rules
//! from an external transformation library (paper §3).
//!
//! The target machine has a shifter but no multiplier.  With the standard
//! transformation library, `x * 2` is still compilable because the
//! `shl-to-mul-pow2` rule adds a template matching the multiplication.
//!
//! Run with `cargo run --example custom_rewrites`.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_rtl::{OpKind, RulePat, TransformLibrary, TransformRule};

const HDL: &str = r#"
    module Alu {
        in a: bit(16);
        in b: bit(16);
        ctrl f: bit(2);
        out y: bit(16);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a << 1;
                2 => y = b;
                3 => y = a;
            }
        }
    }
    module Acc {
        in d: bit(16);
        ctrl en: bit(1);
        out q: bit(16);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(4);
        in din: bit(16);
        ctrl w: bit(1);
        out dout: bit(16);
        memory cells[16]: bit(16);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor NoMul {
        instruction word: bit(8);
        parts { alu: Alu; acc: Acc; ram: Ram; }
        connections {
            alu.a = acc.q;
            alu.b = ram.dout;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[7];
            ram.addr = I[5:2];
            ram.din = acc.q;
            ram.w = I[6];
        }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = "int x, a; void f() { x = a * 2; }";

    // Without any rewrites: `a * 2` has no cover.
    let mut bare = RetargetOptions::default();
    bare.extension.library = TransformLibrary::empty();
    let target = Record::retarget(HDL, &bare)?;
    let err = target
        .compile(&CompileRequest::new(program, "f"))
        .unwrap_err();
    println!("without rewrites: {err}");

    // With the standard library (shl-to-mul-pow2): compiles.
    let target = Record::retarget(HDL, &RetargetOptions::default())?;
    let kernel = target.compile(&CompileRequest::new(program, "f"))?;
    println!(
        "\nwith the standard library ({} words):",
        kernel.code_size()
    );
    println!("{}", target.listing(&kernel));

    // A user-defined linear rule: the machine's `x + x` also computes
    // `x << 1`, so a doubling written as a shift stays compilable even if
    // the shifter is busy elsewhere — rules compose with extraction.
    let mut custom = RetargetOptions::default();
    custom.extension.library.push(TransformRule::Linear {
        name: "add-self-to-shl1".into(),
        machine: RulePat::Op(OpKind::Add, vec![RulePat::Var(0), RulePat::Var(0)]),
        source: RulePat::Op(OpKind::Shl, vec![RulePat::Var(0), RulePat::Const(1)]),
    });
    let target = Record::retarget(HDL, &custom)?;
    println!(
        "with the custom rule the base grows to {} templates",
        target.report().templates_extended
    );
    Ok(())
}
