//! Quickstart: retarget the compiler to a tiny accumulator machine
//! described in HDL, compile one mini-C statement, inspect the result,
//! and record a Chrome trace of the whole thing for Perfetto.
//!
//! Run with `cargo run --example quickstart`.

use record_core::{Collector, CompileRequest, Probe, Record, RetargetOptions, Trace};

/// A complete HDL processor model: an 8-entry memory, an accumulator and a
/// three-function ALU controlled by instruction fields.
const HDL: &str = r#"
    module Alu {
        in a: bit(16);
        in b: bit(16);
        ctrl f: bit(2);
        out y: bit(16);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a - b;
                2 => y = a * b;
                3 => y = b;
            }
        }
    }
    module Acc {
        in d: bit(16);
        ctrl en: bit(1);
        out q: bit(16);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(3);
        in din: bit(16);
        ctrl w: bit(1);
        out dout: bit(16);
        memory cells[8]: bit(16);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Tiny {
        instruction word: bit(8);
        parts { alu: Alu; acc: Acc; ram: Ram; }
        connections {
            alu.a = acc.q;
            alu.b = ram.dout;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[7];
            ram.addr = I[4:2];
            ram.din = acc.q;
            ram.w = I[6];
        }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Retargeting: HDL -> netlist -> RT templates -> grammar -> selector.
    // The result is a frozen artifact: compiling borrows it immutably.
    // The probed variant streams every phase into a trace collector;
    // `Record::retarget` is the same pipeline with the probe disabled.
    let mut sink = Collector::new(0);
    let target = {
        let mut probe = Probe::new(&mut sink);
        Record::retarget_probed(HDL, &RetargetOptions::default(), &mut probe)?
    };
    let retarget_trace = sink.into_trace();
    let stats = target.report();
    println!(
        "retargeted `{}`: {} RT templates, {} grammar rules in {:.2?}",
        stats.processor,
        stats.templates_extended,
        stats.rules,
        stats.t_total()
    );

    // The extracted instruction set, as the paper's RT notation.
    println!("\nextracted RT templates:");
    for t in target.base().templates() {
        println!("  {}", t.render(target.netlist()));
    }

    // Compile a statement and show the selected code.  Using a session
    // with a collector installed traces the compile too; the generated
    // code is byte-identical to the untraced `target.compile` path.
    let mut session = target.session();
    session.install_collector(1);
    let kernel = session.compile(&CompileRequest::new(
        "int x, a, b; void f() { x = x + a * b; }",
        "f",
    ))?;
    let compile_trace = session.take_trace().expect("collector was installed");
    println!(
        "\ncompiled `x = x + a * b;` to {} words:",
        kernel.code_size()
    );
    println!("{}", target.listing(&kernel));

    // Execute it: x=10, a=3, b=4 -> x=22.
    let machine = target.execute(&kernel, &[("x", vec![10]), ("a", vec![3]), ("b", vec![4])]);
    let dm = target.data_memory()?;
    println!("result: x = {}", machine.mem(dm, 0));

    // Where did the time go?  The always-on report answers in text...
    print!("\n{}", kernel.report.render_table("compile phases"));

    // ...and the merged trace answers visually: open the written file in
    // Perfetto (https://ui.perfetto.dev) or chrome://tracing.  Lane 0 is
    // the retarget, lane 1 the compile; per-statement selector and
    // emission spans nest inside the `codegen` span.
    let trace = Trace::merge([retarget_trace, compile_trace]);
    let path = std::env::temp_dir().join("record-quickstart-trace.json");
    std::fs::write(&path, trace.to_chrome_json("record quickstart"))?;
    println!("chrome trace written to {}", path.display());

    // The tiny machine above is branchless: it can only run straight-line
    // code.  Models that declare a program counter (`pc { pc }`) also get
    // runtime control flow — the reference model's comparator and guarded
    // PC update paths let the compiler lower `if`/`while` to real
    // compare-and-branch code.  Compile one branchy kernel end to end:
    let ref_model = record_targets::models::model("ref").expect("ref model exists");
    let ref_target = Record::retarget(ref_model.hdl, &RetargetOptions::default())?;
    let vec_max = record_targets::kernel("vec_max").expect("control kernel exists");
    let branchy = ref_target.compile(&CompileRequest::new(vec_max.source, vec_max.function))?;
    println!(
        "\ncompiled `{}` (data-dependent branches) to {} words on `ref`",
        vec_max.name,
        branchy.code_size()
    );
    let machine = ref_target.execute(
        &branchy,
        &[("a", vec![3, 9, 1, 40, 7, 2, 25, 8]), ("max", vec![0])],
    );
    let (_, max_addr) = branchy
        .binding
        .assignments()
        .find(|(n, _)| *n == "max")
        .expect("max is bound");
    let dm = ref_target.data_memory()?;
    println!("result: max = {}", machine.mem(dm, max_addr));
    Ok(())
}
