//! Quickstart: retarget the compiler to a tiny accumulator machine
//! described in HDL, compile one mini-C statement and inspect the result.
//!
//! Run with `cargo run --example quickstart`.

use record_core::{CompileRequest, Record, RetargetOptions};

/// A complete HDL processor model: an 8-entry memory, an accumulator and a
/// three-function ALU controlled by instruction fields.
const HDL: &str = r#"
    module Alu {
        in a: bit(16);
        in b: bit(16);
        ctrl f: bit(2);
        out y: bit(16);
        behavior {
            case f {
                0 => y = a + b;
                1 => y = a - b;
                2 => y = a * b;
                3 => y = b;
            }
        }
    }
    module Acc {
        in d: bit(16);
        ctrl en: bit(1);
        out q: bit(16);
        register q = d when en == 1;
    }
    module Ram {
        in addr: bit(3);
        in din: bit(16);
        ctrl w: bit(1);
        out dout: bit(16);
        memory cells[8]: bit(16);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor Tiny {
        instruction word: bit(8);
        parts { alu: Alu; acc: Acc; ram: Ram; }
        connections {
            alu.a = acc.q;
            alu.b = ram.dout;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[7];
            ram.addr = I[4:2];
            ram.din = acc.q;
            ram.w = I[6];
        }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Retargeting: HDL -> netlist -> RT templates -> grammar -> selector.
    // The result is a frozen artifact: compiling borrows it immutably.
    let target = Record::retarget(HDL, &RetargetOptions::default())?;
    let stats = target.stats();
    println!(
        "retargeted `{}`: {} RT templates, {} grammar rules in {:.2?}",
        stats.processor, stats.templates_extended, stats.rules, stats.t_total
    );

    // The extracted instruction set, as the paper's RT notation.
    println!("\nextracted RT templates:");
    for t in target.base().templates() {
        println!("  {}", t.render(target.netlist()));
    }

    // Compile a statement and show the selected code.
    let kernel = target.compile(&CompileRequest::new(
        "int x, a, b; void f() { x = x + a * b; }",
        "f",
    ))?;
    println!(
        "\ncompiled `x = x + a * b;` to {} words:",
        kernel.code_size()
    );
    println!("{}", target.listing(&kernel));

    // Execute it: x=10, a=3, b=4 -> x=22.
    let machine = target.execute(&kernel, &[("x", vec![10]), ("a", vec![3]), ("b", vec![4])]);
    let dm = target.data_memory()?;
    println!("result: x = {}", machine.mem(dm, 0));
    Ok(())
}
