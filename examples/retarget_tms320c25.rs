//! Full walk-through on the TMS320C25-like DSP model: retarget, inspect
//! the grammar, compile DSPstone kernels, verify by simulation against the
//! mini-C interpreter.
//!
//! Run with `cargo run --example retarget_tms320c25`.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_targets::{kernels, models};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = models::model("tms320c25").expect("model exists");
    let target = Record::retarget(model.hdl, &RetargetOptions::default())?;
    let s = target.report();
    println!(
        "{}: {} extracted / {} extended templates, {} rules, retargeted in {:.2?}",
        s.processor,
        s.templates_extracted,
        s.templates_extended,
        s.rules,
        s.t_total()
    );

    // A few characteristic C25 templates: MAC via the P register.
    println!("\nsample templates:");
    for t in target.base().templates().iter().take(12) {
        println!("  {}", t.render(target.netlist()));
    }

    // Compile and verify the dot product kernel.
    let k = kernels::kernel("dot_product").expect("kernel exists");
    let compiled = target.compile(&CompileRequest::new(k.source, k.function))?;
    println!(
        "\ndot_product: {} words (hand-written reference: {})",
        compiled.code_size(),
        k.hand_ops
    );

    let a: Vec<u64> = (1..=8).collect();
    let b: Vec<u64> = (11..=18).collect();
    let expect: u64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();

    let machine = target.execute(&compiled, &[("a", a), ("b", b)]);
    let dm = target.data_memory()?;
    let s_addr = compiled
        .binding
        .assignments()
        .find(|(n, _)| *n == "s")
        .expect("s bound")
        .1;
    println!(
        "machine result s = {} (expected {expect})",
        machine.mem(dm, s_addr)
    );
    assert_eq!(machine.mem(dm, s_addr), expect & 0xFFFF);
    println!("simulation matches the mini-C interpreter semantics.");
    Ok(())
}
