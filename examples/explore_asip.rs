//! HW/SW co-design exploration (the paper's §1 motivation): retargeting is
//! fast enough to study how data-path variants change code size.
//!
//! Three variants of a small ASIP are retargeted; the same kernel is
//! compiled on each, showing the cost of removing the MAC path or the
//! memory-operand ALU port.
//!
//! Run with `cargo run --example explore_asip`.

use record_core::{CompileRequest, Record, RetargetOptions};

/// Builds an ASIP variant. `mac` chains the multiplier into the ALU
/// (multiply-accumulate in one RT); `imm` provides an immediate data path.
fn variant(mac: bool, imm: bool) -> String {
    let bmux_b = if mac { "mul.y" } else { "ram.dout" };
    let bmux_c = if imm { "I[15:12]" } else { "ram.dout" };
    let alu_b = "bmux.y";
    format!(
        r#"
        module Alu {{
            in a: bit(16);
            in b: bit(16);
            ctrl f: bit(2);
            out y: bit(16);
            behavior {{
                case f {{ 0 => y = a + b; 1 => y = a - b; 2 => y = b; 3 => y = a; }}
            }}
        }}
        module Mul {{ in a: bit(16); in b: bit(16); out y: bit(16);
                     behavior {{ y = a * b; }} }}
        module Mux3 {{ in a: bit(16); in b: bit(16); in c: bit(16); ctrl s: bit(2); out y: bit(16);
                      behavior {{ case s {{ 0 => y = a; 1 => y = b; 2 => y = c; }} }} }}
        module Acc2 {{ in a: bit(16); in b: bit(16); ctrl s: bit(1); out y: bit(16);
                      behavior {{ case s {{ 0 => y = a; 1 => y = b; }} }} }}
        module Reg16 {{ in d: bit(16); ctrl en: bit(1); out q: bit(16);
                       register q = d when en == 1; }}
        module Ram {{
            in addr: bit(4); in din: bit(16); ctrl w: bit(1); out dout: bit(16);
            memory cells[16]: bit(16);
            read dout = cells[addr];
            write cells[addr] = din when w == 1;
        }}
        processor Asip {{
            instruction word: bit(16);
            parts {{ alu: Alu; mul: Mul; bmux: Mux3; amux: Acc2; acc: Reg16; t: Reg16; ram: Ram; }}
            connections {{
                mul.a = t.q;
                mul.b = ram.dout;
                bmux.a = ram.dout;
                bmux.b = {bmux_b};
                bmux.c = {bmux_c};
                bmux.s = I[11:10];
                alu.a = acc.q;
                alu.b = {alu_b};
                alu.f = I[1:0];
                amux.a = alu.y;
                amux.b = mul.y;
                amux.s = I[12];
                acc.d = amux.y;
                acc.en = I[3];
                t.d = ram.dout;
                t.en = I[8];
                ram.addr = I[7:4];
                ram.din = acc.q;
                ram.w = I[9];
            }}
        }}
        "#
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = "int s, a[4], b[4];
                  void f() { int i; s = 0; for (i = 0; i < 4; i++) { s += a[i] * b[i]; } }";
    println!(
        "{:<28} {:>9} {:>10} {:>10}",
        "data-path variant", "templates", "retarget", "code size"
    );
    for (name, mac, imm) in [
        ("MAC chained + immediates", true, true),
        ("no MAC chaining", false, true),
        ("MAC, no immediate path", true, false),
    ] {
        let hdl = variant(mac, imm);
        match Record::retarget(&hdl, &RetargetOptions::default()) {
            Ok(target) => {
                let stats_templates = target.report().templates_extended;
                let stats_time = target.report().t_total();
                let size = target
                    .compile(&CompileRequest::new(kernel, "f"))
                    .map(|k| k.code_size().to_string())
                    .unwrap_or_else(|e| format!("uncompilable ({e})"));
                println!(
                    "{name:<28} {stats_templates:>9} {:>10.2?} {size:>10}",
                    stats_time
                );
            }
            Err(e) => println!("{name:<28} retarget failed: {e}"),
        }
    }
    println!("\nShort turnaround per variant is what makes this exploration practical");
    println!("(paper §4: 'retargeting at most takes some CPU minutes').");
    Ok(())
}
