//! Regenerates the golden listing files under `tests/golden/`.
//!
//! The straight-line kernels must keep producing byte-identical listings
//! across pipeline refactors; `tests/straightline_golden.rs` compares
//! against these files.  Run `cargo run --release --example
//! golden_listings` only when an intentional output change is reviewed.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_targets::{kernels, models};
use std::fmt::Write as _;

/// Full listings above this size are stored as per-section FNV-1a
/// digests instead of verbatim text (manocpu's accumulator code is
/// ~700 KiB of listings).
const DIGEST_THRESHOLD: usize = 100_000;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    std::fs::create_dir_all(dir).expect("create tests/golden");
    for model in models() {
        let target = match Record::retarget(model.hdl, &RetargetOptions::default()) {
            Ok(t) => t,
            Err(e) => panic!("retarget {} failed: {e}", model.name),
        };
        // (section header, section body) pairs.
        let mut sections = Vec::new();
        for kernel in kernels() {
            for (mode, compaction) in [("compacted", true), ("vertical", false)] {
                let req =
                    CompileRequest::new(kernel.source, kernel.function).compaction(compaction);
                let body = match target.compile(&req) {
                    Ok(k) => target.listing(&k),
                    Err(e) => format!("ERROR {}\n", e.classify()),
                };
                sections.push((format!("== {} {} ==", kernel.name, mode), body));
            }
        }
        let total: usize = sections.iter().map(|(h, b)| h.len() + b.len()).sum();
        let (path, out) = if total > DIGEST_THRESHOLD {
            let mut out = String::new();
            for (header, body) in &sections {
                writeln!(
                    out,
                    "{header} fnv1a={:016x} bytes={}",
                    fnv1a(body.as_bytes()),
                    body.len()
                )
                .unwrap();
            }
            (format!("{dir}/digests_{}.txt", model.name), out)
        } else {
            let mut out = String::new();
            for (header, body) in &sections {
                writeln!(out, "{header}").unwrap();
                out.push_str(body);
            }
            (format!("{dir}/listings_{}.txt", model.name), out)
        };
        std::fs::write(&path, out).expect("write golden file");
        println!("wrote {path}");
    }
}
