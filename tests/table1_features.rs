//! Feature tests for the paper's Table 1: the supported target processor
//! class.  Each test demonstrates one row of the table on the shipped
//! models.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_rtl::{Dest, Pattern};
use record_targets::models;

fn retarget(name: &str) -> record_core::Target {
    let m = models::model(name).unwrap();
    Record::retarget(m.hdl, &RetargetOptions::default()).unwrap()
}

/// "data type: fixed-point" — all arithmetic wraps at the machine word.
#[test]
fn fixed_point_arithmetic() {
    let t = retarget("tms320c25");
    let k = t
        .compile(&CompileRequest::new(
            "int x, a; void f() { x = a + a; }",
            "f",
        ))
        .unwrap();
    let machine = t.execute(&k, &[("a", vec![0x9000])]);
    let dm = t.data_memory().unwrap();
    assert_eq!(machine.mem(dm, 0), 0x2000); // 0x9000+0x9000 mod 2^16
}

/// "code type: time-stationary" — two RTs in one word read pre-state.
#[test]
fn time_stationary_semantics() {
    let m = models::model("demo").unwrap();
    let target = Record::retarget(m.hdl, &RetargetOptions::default()).unwrap();
    // demo is horizontal: acc and r0 can load in the same word.
    let n = target.netlist();
    assert!(n.storage_by_name("acc").is_some());
    assert!(n.storage_by_name("r0").is_some());
}

/// "instruction format: horizontal & encoded" — demo is horizontal (wide
/// word, independent fields), the C25 model is encoded (decoder).
#[test]
fn horizontal_and_encoded_formats() {
    let demo = retarget("demo");
    let c25 = retarget("tms320c25");
    // Horizontal: no route is discarded for encoding conflicts.
    assert_eq!(demo.report().unsat_discarded, 0);
    // Encoded: the decoder rules out combinations.
    assert!(c25.report().unsat_discarded > 0);
}

/// "memory structure: load-store & memory-register" — the C25 model has
/// both a pure load (LAC) and ALU ops with memory operands (ADD dma).
#[test]
fn load_store_and_memory_register() {
    let t = retarget("tms320c25");
    let n = t.netlist();
    let acc = n.storage_by_name("acc").unwrap().id;
    let dmem = n.storage_by_name("dmem").unwrap().id;
    let load = Pattern::MemRead(dmem, Box::new(Pattern::Imm { hi: 7, lo: 0 }));
    assert!(t.base().find(&Dest::Reg(acc), &load).is_some(), "LAC");
    let memop = Pattern::Op(
        record_rtl::OpKind::Add,
        vec![Pattern::Reg(acc), load.clone()],
    );
    assert!(t.base().find(&Dest::Reg(acc), &memop).is_some(), "ADD dma");
}

/// "addressing modes: post-modify" — the C25 model extracts AR increment /
/// decrement templates usable alongside indirect accesses.
#[test]
fn post_modify_addressing_building_blocks() {
    let t = retarget("tms320c25");
    let n = t.netlist();
    let ar0 = n.storage_by_name("ar0").unwrap().id;
    let inc = Pattern::Op(
        record_rtl::OpKind::Add,
        vec![Pattern::Reg(ar0), Pattern::Const(1)],
    );
    assert!(t.base().find(&Dest::Reg(ar0), &inc).is_some(), "AR0 += 1");
    // Indirect access through AR0 exists too.
    let acc = n.storage_by_name("acc").unwrap().id;
    let dmem = n.storage_by_name("dmem").unwrap().id;
    let indirect = Pattern::MemRead(dmem, Box::new(Pattern::Reg(ar0)));
    assert!(
        t.base().find(&Dest::Reg(acc), &indirect).is_some(),
        "LAC *AR0"
    );
}

/// "register structure: heterogeneous & homogeneous" — C25 has dedicated
/// ACC/T/P registers; ref has an 8-cell register file.
#[test]
fn heterogeneous_and_homogeneous_registers() {
    let c25 = retarget("tms320c25");
    for r in ["acc", "t", "p"] {
        assert!(c25.netlist().storage_by_name(r).is_some(), "{r} exists");
    }
    let r = retarget("ref");
    let rf = r.netlist().storage_by_name("rf").unwrap();
    assert_eq!(rf.kind, record_netlist::StorageKind::RegFile);
    assert_eq!(rf.size, 8);
}

/// "mode registers" — the C25 ARP register is a designated mode register
/// and indirect-addressing conditions depend on its bits.
#[test]
fn mode_registers_condition_addressing() {
    let t = retarget("tms320c25");
    let n = t.netlist();
    let arp = n.storage_by_name("arp").unwrap();
    assert!(arp.is_mode);
    let acc = n.storage_by_name("acc").unwrap().id;
    let dmem = n.storage_by_name("dmem").unwrap().id;
    let ar1 = n.storage_by_name("ar1").unwrap().id;
    let via_ar1 = Pattern::MemRead(dmem, Box::new(Pattern::Reg(ar1)));
    let id = t
        .base()
        .find(&Dest::Reg(acc), &via_ar1)
        .expect("indirect via AR1");
    // The template's condition must involve the ARP mode bit: it only
    // fires when ARP selects AR1.
    let cond = t.base().template(id).cond;
    let mode_var = t.varmap().mode_bit(arp.id, 0).expect("arp mode bit");
    let support = t.manager().support(cond);
    assert!(
        support.contains(&mode_var),
        "indirect-addressing condition must depend on ARP"
    );
}

/// "program control: standard jump instructions" — writable PC appears as
/// an RT destination when modelled.  Our shipped models omit a PC (kernels
/// are straight-line), so this documents the mechanism on a micro model.
#[test]
fn jump_templates_extract_from_pc_models() {
    let src = r#"
        module Inc { in a: bit(8); out y: bit(8); behavior { y = a + 1; } }
        module Mux2 { in a: bit(8); in b: bit(8); ctrl s: bit(1); out y: bit(8);
                      behavior { case s { 0 => y = a; 1 => y = b; } } }
        module Pc { in d: bit(8); out q: bit(8); register q = d; }
        processor WithPc {
            instruction word: bit(10);
            parts { pc: Pc; inc: Inc; pmux: Mux2; }
            connections {
                inc.a = pc.q;
                pmux.a = inc.y;
                pmux.b = I[7:0];
                pmux.s = I[8];
                pc.d = pmux.y;
            }
        }
    "#;
    let t = Record::retarget(src, &RetargetOptions::default()).unwrap();
    let n = t.netlist();
    let pc = n.storage_by_name("pc").unwrap().id;
    // Sequential flow: pc := pc + 1; jump: pc := #imm.
    let seq = Pattern::Op(
        record_rtl::OpKind::Add,
        vec![Pattern::Reg(pc), Pattern::Const(1)],
    );
    assert!(t.base().find(&Dest::Reg(pc), &seq).is_some(), "pc := pc+1");
    let jmp = Pattern::Imm { hi: 7, lo: 0 };
    assert!(
        t.base().find(&Dest::Reg(pc), &jmp).is_some(),
        "pc := #target"
    );
}
