//! End-to-end control flow: branchy kernels retarget, compile and agree
//! with the mini-C interpreter on the reference model in both vertical and
//! compacted schedules; branchless targets fail with the structured
//! `no-branch-path` class; lowering errors carry real source positions;
//! and the CFG validity assertion fires on malformed graphs.

mod common;

use record_core::{CompileRequest, Record, RetargetOptions, Target};
use record_ir::{Block, Cfg, Terminator};
use record_targets::{kernels, models};

fn retarget(name: &str) -> Target {
    let m = models::model(name).unwrap();
    Record::retarget(m.hdl, &RetargetOptions::default())
        .unwrap_or_else(|e| panic!("{name} failed to retarget: {e}"))
}

/// The upgraded reference machine exposes all three control-transfer
/// template shapes: unconditional jump, branch-if-zero and
/// branch-if-nonzero on the accumulator.
#[test]
fn ref_machine_extracts_branch_templates() {
    let target = retarget("ref");
    let pc = target.netlist().pc_storage().expect("ref declares a pc").id;
    let mut jumps = 0;
    let mut br_eq = 0;
    let mut br_ne = 0;
    for t in target.base().templates() {
        if t.dest != record_rtl::Dest::Reg(pc) {
            continue;
        }
        match &t.pred {
            None => jumps += 1,
            Some(p) if p.value == 0 && p.eq => br_eq += 1,
            Some(p) if p.value == 0 && !p.eq => br_ne += 1,
            Some(_) => {}
        }
    }
    assert!(jumps > 0, "no unconditional jump template");
    assert!(br_eq > 0, "no branch-if-zero template");
    assert!(br_ne > 0, "no branch-if-nonzero template");
}

/// Deterministic input images for a control kernel: three data sets per
/// kernel so both branch directions and different trip counts are hit.
fn images(source: &str, seed: u64) -> Vec<(String, Vec<u64>)> {
    let program = record_ir::parse(source).unwrap();
    program
        .globals
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let vals = (0..g.words())
                .map(|i| (gi as u64 * 37 + i * 11 + seed * 29 + 3) & 0x3F)
                .collect();
            (g.name.clone(), vals)
        })
        .collect()
}

/// The oracle matrix of the issue: every control-flow kernel, on the
/// reference model, in both schedules, over several input images, agrees
/// with the mini-C interpreter.
#[test]
fn control_kernels_match_interpreter_on_ref() {
    let target = retarget("ref");
    for k in kernels::control_kernels() {
        for (mode, compaction) in [("vertical", false), ("compacted", true)] {
            let compiled = target
                .compile(&CompileRequest::new(k.source, k.function).compaction(compaction))
                .unwrap_or_else(|e| panic!("{} ({mode}) failed: {e}", k.name));
            assert!(compiled.code_size() > 0);
            for seed in 0..3 {
                let init = images(k.source, seed);
                common::assert_matches_interpreter_cfg(
                    &target,
                    &compiled,
                    k.source,
                    k.function,
                    &init,
                    &format!("{} {mode} seed{seed}", k.name),
                );
            }
        }
    }
}

/// A branch both of whose sides fall through to a join, inside a runtime
/// loop — exercises back edges, fall-through polarity selection and
/// per-block allocation with live-across-block values.
#[test]
fn while_loop_with_nested_if_matches_interpreter() {
    let target = retarget("ref");
    let src = "int n, odd, even;
               void f() {
                   odd = 0;
                   even = 0;
                   while (n) {
                       if (n & 1) { odd = odd + n; } else { even = even + n; }
                       n = n - 1;
                   }
               }";
    for compaction in [false, true] {
        let compiled = target
            .compile(&CompileRequest::new(src, "f").compaction(compaction))
            .unwrap();
        for n in [0u64, 1, 7, 12] {
            let init = vec![
                ("n".to_string(), vec![n]),
                ("odd".to_string(), vec![0]),
                ("even".to_string(), vec![0]),
            ];
            common::assert_matches_interpreter_cfg(
                &target,
                &compiled,
                src,
                "f",
                &init,
                &format!("odd_even n={n} compaction={compaction}"),
            );
        }
    }
}

/// A target that declares no program counter cannot compile a program
/// that needs a runtime transfer; the failure is the structured
/// `no-branch-path` class, not a selection error.  The `demo` model stays
/// branchless exactly for this test.
#[test]
fn branchless_model_reports_no_branch_path() {
    let target = retarget("demo");
    assert!(target.netlist().pc_storage().is_none());
    let src = "int a, b; void f() { while (a) { b = b + a; a = a - 1; } }";
    let err = target
        .compile(&CompileRequest::new(src, "f"))
        .expect_err("demo has no PC, branchy code must fail");
    let class = err.classify();
    assert_eq!(class.kind, "no-branch-path", "got class {class}");
}

/// The baseline per-operator compiler never learned control flow; asking
/// it for a branchy program reports the same structured class.
#[test]
fn baseline_rejects_control_flow_as_no_branch_path() {
    let target = retarget("ref");
    let src = "int a, b; void f() { if (a) { b = 1; } else { b = 2; } }";
    let err = target
        .compile(
            &CompileRequest::new(src, "f")
                .baseline(true)
                .compaction(false),
        )
        .expect_err("baseline cannot compile branches");
    let class = err.classify();
    assert_eq!(class.kind, "no-branch-path", "got class {class}");
}

/// Satellite: lowering errors carry the offending source line.  The bad
/// array index sits on line 4 of the translation unit.
#[test]
fn bad_index_reports_its_line() {
    let src = "int a[4];\n\
               int x;\n\
               void f() {\n\
                   x = a[9];\n\
               }";
    let program = record_ir::parse(src).unwrap();
    let err = record_ir::lower_cfg(&program, "f").expect_err("index out of range");
    assert_eq!(err.line(), 4, "wrong line in: {err}");
}

/// Straight-line programs still lower to exactly one halt-terminated
/// block, and lowered CFGs validate; a malformed graph is rejected.
#[test]
fn lowered_cfgs_validate() {
    let program =
        record_ir::parse("int a, b; void f() { while (a) { b = b + 1; a = a - 1; } }").unwrap();
    let cfg = record_ir::lower_cfg(&program, "f").unwrap();
    assert!(cfg.validate().is_ok());
    assert!(!cfg.is_straight_line());
    cfg.assert_valid();

    let program = record_ir::parse("int a; void f() { a = 1; }").unwrap();
    let cfg = record_ir::lower_cfg(&program, "f").unwrap();
    assert!(cfg.is_straight_line());
    cfg.assert_valid();

    let broken = Cfg {
        blocks: vec![Block {
            stmts: vec![],
            term: Terminator::Jump(5),
        }],
    };
    assert!(broken.validate().is_err());
}

/// The debug-build CFG validity assertion actually fires.
#[test]
#[cfg_attr(
    debug_assertions,
    should_panic(expected = "targets non-existent block")
)]
fn cfg_assert_valid_panics_on_malformed_graph() {
    let broken = Cfg {
        blocks: vec![Block {
            stmts: vec![],
            term: Terminator::Jump(5),
        }],
    };
    broken.assert_valid();
    // In release builds debug_assert! compiles out; make the test pass
    // trivially there rather than expecting a panic.
    #[cfg(debug_assertions)]
    unreachable!();
}
