//! Differential pin: straight-line kernels must produce byte-identical
//! listings to the reviewed golden files under `tests/golden/`.
//!
//! The CFG refactor routes single-block programs through the same lowering,
//! emission, allocation and compaction entry points as branchy ones; this
//! test guarantees the fast path stays exactly the fast path.  Regenerate
//! the files with `cargo run --release --example golden_listings` only when
//! an intentional output change is reviewed.

use record_core::{CompileRequest, Record, RetargetOptions};
use record_targets::{kernels, models};
use std::fmt::Write as _;

/// Must match `examples/golden_listings.rs`.
const DIGEST_THRESHOLD: usize = 100_000;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders the golden file content for one model, exactly as the
/// `golden_listings` example writes it.
fn render(model: &models::TargetModel) -> (String, String) {
    let target = Record::retarget(model.hdl, &RetargetOptions::default())
        .unwrap_or_else(|e| panic!("retarget {} failed: {e}", model.name));
    let mut sections = Vec::new();
    for kernel in kernels::kernels() {
        for (mode, compaction) in [("compacted", true), ("vertical", false)] {
            let req = CompileRequest::new(kernel.source, kernel.function).compaction(compaction);
            let body = match target.compile(&req) {
                Ok(k) => target.listing(&k),
                Err(e) => format!("ERROR {}\n", e.classify()),
            };
            sections.push((format!("== {} {} ==", kernel.name, mode), body));
        }
    }
    let total: usize = sections.iter().map(|(h, b)| h.len() + b.len()).sum();
    if total > DIGEST_THRESHOLD {
        let mut out = String::new();
        for (header, body) in &sections {
            writeln!(
                out,
                "{header} fnv1a={:016x} bytes={}",
                fnv1a(body.as_bytes()),
                body.len()
            )
            .unwrap();
        }
        (format!("digests_{}.txt", model.name), out)
    } else {
        let mut out = String::new();
        for (header, body) in &sections {
            writeln!(out, "{header}").unwrap();
            out.push_str(body);
        }
        (format!("listings_{}.txt", model.name), out)
    }
}

#[test]
fn straightline_listings_match_golden_files() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    for model in models::models() {
        let (file, want) = render(&model);
        let path = format!("{dir}/{file}");
        let got = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("golden file {path} unreadable: {e}"));
        assert_eq!(
            got, want,
            "{}: listings drifted from {path}; if the change is intentional, \
             regenerate with `cargo run --release --example golden_listings`",
            model.name
        );
    }
}
