//! Cross-crate property tests: random programs through the whole pipeline.

use proptest::prelude::*;
use record_core::{CompileRequest, Record, RetargetOptions, Target};

/// A small machine with a MAC path and an immediate path; rich enough that
/// random expressions compile, small enough to keep shrinking fast.
const MACHINE: &str = r#"
    module Alu {
        in a: bit(16);
        in b: bit(16);
        ctrl f: bit(2);
        out y: bit(16);
        behavior {
            case f { 0 => y = a + b; 1 => y = a - b; 2 => y = a & b; 3 => y = b; }
        }
    }
    module Mul { in a: bit(16); in b: bit(16); out y: bit(16);
                 behavior { y = a * b; } }
    module Mux3 {
        in a: bit(16); in b: bit(16); in c: bit(16);
        ctrl s: bit(2);
        out y: bit(16);
        behavior { case s { 0 => y = a; 1 => y = b; 2 => y = c; } }
    }
    module Reg16 { in d: bit(16); ctrl en: bit(1); out q: bit(16);
                   register q = d when en == 1; }
    module Ram {
        in addr: bit(4); in din: bit(16); ctrl w: bit(1); out dout: bit(16);
        memory cells[16]: bit(16);
        read dout = cells[addr];
        write cells[addr] = din when w == 1;
    }
    processor PropMachine {
        instruction word: bit(16);
        parts { alu: Alu; mul: Mul; bmux: Mux3; tmux: Mux3; acc: Reg16; t: Reg16; ram: Ram; }
        connections {
            mul.a = t.q;
            mul.b = ram.dout;
            bmux.a = ram.dout;
            bmux.b = mul.y;
            bmux.c = I[15:12];
            bmux.s = I[11:10];
            alu.a = acc.q;
            alu.b = bmux.y;
            alu.f = I[1:0];
            acc.d = alu.y;
            acc.en = I[3];
            tmux.a = ram.dout;
            tmux.b = I[15:12];
            tmux.c = acc.q;
            tmux.s = I[14:13];
            t.d = tmux.y;
            t.en = I[8];
            ram.addr = I[7:4];
            ram.din = acc.q;
            ram.w = I[9];
        }
    }
"#;

thread_local! {
    // The frozen artifact needs no interior mutability: compilation takes
    // `&Target`.
    static TARGET: Target =
        Record::retarget(MACHINE, &RetargetOptions::default()).expect("machine retargets");
}

/// Random straight-line mini-C programs over four scalars, restricted to
/// the operators the machine supports.  Multiplications only combine leaf
/// operands: the machine's multiplier reads `t` and a memory word, so a
/// product of *computed* values is legitimately uncoverable by pure tree
/// parsing (the paper defers such splitting to later phases).
fn program_strategy() -> impl Strategy<Value = String> {
    let vars = ["a", "b", "c", "d"];
    let var_leaf = (0usize..4).prop_map(move |i| vars[i].to_owned());
    let any_leaf = prop_oneof![var_leaf.clone(), (0u64..15).prop_map(|v| v.to_string()),];
    // Keep a variable on every left spine so constant folding can never
    // collapse a subtree into a constant wider than the immediate field.
    let mul_term = (var_leaf.clone(), any_leaf.clone()).prop_map(|(l, r)| format!("({l} * {r})"));
    let base = prop_oneof![var_leaf, mul_term.clone()];
    let op = prop_oneof![Just("+"), Just("-"), Just("&")];
    let rhs = prop_oneof![any_leaf, mul_term];
    let expr = base.prop_recursive(3, 12, 2, move |inner| {
        (inner, op.clone(), rhs.clone()).prop_map(|(l, o, r)| format!("({l} {o} {r})"))
    });
    prop::collection::vec((0usize..4, expr), 1..5).prop_map(move |stmts| {
        let body: String = stmts
            .iter()
            .map(|(ti, e)| format!("{} = {};\n", vars[*ti], e))
            .collect();
        format!("int a, b, c, d; void f() {{\n{body}}}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled machine code computes what the interpreter computes.
    #[test]
    fn pipeline_preserves_semantics(src in program_strategy(), vals in prop::collection::vec(0u64..0xFFFF, 4)) {
        TARGET.with(|target| {
            let program = record_ir::parse(&src).unwrap();
            let mut mem = record_ir::Memory::new();
            for (name, v) in ["a", "b", "c", "d"].iter().zip(&vals) {
                mem.insert((*name).to_owned(), vec![*v]);
            }
            record_ir::interp(&program, "f", &mut mem, 16).unwrap();

            let compiled = target
                .compile(&CompileRequest::new(&src, "f"))
                .expect("every generated program is compilable on this machine");
            let init: Vec<(&str, Vec<u64>)> = ["a", "b", "c", "d"]
                .iter()
                .zip(&vals)
                .map(|(n, v)| (*n, vec![*v]))
                .collect();
            let machine = target.execute(&compiled, &init);
            let dm = target.data_memory().unwrap();
            for (name, addr) in compiled.binding.assignments() {
                prop_assert_eq!(
                    machine.mem(dm, addr),
                    mem[name][0],
                    "mismatch at {} in {}",
                    name,
                    src
                );
            }
            Ok(())
        })?;
    }

    /// Compaction never changes results (time-stationary semantics) and
    /// never lengthens code.
    #[test]
    fn compaction_preserves_semantics(src in program_strategy(), vals in prop::collection::vec(0u64..0xFFFF, 4)) {
        TARGET.with(|target| {
            let init: Vec<(&str, Vec<u64>)> = ["a", "b", "c", "d"]
                .iter()
                .zip(&vals)
                .map(|(n, v)| (*n, vec![*v]))
                .collect();
            let vertical = target
                .compile(&CompileRequest::new(&src, "f").compaction(false))
                .expect("compiles");
            let compacted = target
                .compile(&CompileRequest::new(&src, "f"))
                .expect("compiles");
            prop_assert!(compacted.code_size() <= vertical.code_size());
            let m1 = target.execute(&vertical, &init);
            let m2 = target.execute(&compacted, &init);
            let dm = target.data_memory().unwrap();
            for (_, addr) in vertical.binding.assignments() {
                prop_assert_eq!(m1.mem(dm, addr), m2.mem(dm, addr));
            }
            Ok(())
        })?;
    }

    /// The baseline compiler is also always correct (it shares the
    /// selector), just bigger.
    #[test]
    fn baseline_is_correct_and_no_smaller(src in program_strategy(), vals in prop::collection::vec(0u64..0xFFFF, 4)) {
        TARGET.with(|target| {
            let program = record_ir::parse(&src).unwrap();
            let mut mem = record_ir::Memory::new();
            for (name, v) in ["a", "b", "c", "d"].iter().zip(&vals) {
                mem.insert((*name).to_owned(), vec![*v]);
            }
            record_ir::interp(&program, "f", &mut mem, 16).unwrap();

            let smart = target
                .compile(&CompileRequest::new(&src, "f").compaction(false))
                .expect("compiles");
            let naive = target
                .compile(&CompileRequest::new(&src, "f").baseline(true).compaction(false))
                .expect("compiles");
            prop_assert!(naive.ops.len() >= smart.ops.len());
            let init: Vec<(&str, Vec<u64>)> = ["a", "b", "c", "d"]
                .iter()
                .zip(&vals)
                .map(|(n, v)| (*n, vec![*v]))
                .collect();
            let machine = target.execute(&naive, &init);
            let dm = target.data_memory().unwrap();
            for (name, addr) in naive.binding.assignments() {
                prop_assert_eq!(machine.mem(dm, addr), mem[name][0]);
            }
            Ok(())
        })?;
    }
}
