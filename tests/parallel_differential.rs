//! Parallelism differential: a frozen `Target` shared across threads via
//! `compile_batch` must produce *byte-identical* results to sequential
//! one-shot compiles — op sequences, schedules and allocation counters —
//! for every kernel × model pair, under every option set.  This is the
//! contract that makes the retarget-once/compile-many split safe to serve
//! concurrent traffic with.

mod common;

use record_core::{CompileError, CompileRequest, CompiledKernel, Record, RetargetOptions, Target};
use record_targets::{kernels, models};

/// Compile-time check: the frozen artifact is shareable across threads.
/// (`compile_batch` would not compile otherwise, but the assertion
/// documents the API contract independently of any runtime path.)
#[test]
fn target_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Target>();
    assert_send_sync::<record_core::FrozenBdd>();
}

fn assert_identical(
    batch: &[Result<CompiledKernel, CompileError>],
    sequential: &[Result<CompiledKernel, CompileError>],
    label: &str,
) {
    assert_eq!(batch.len(), sequential.len(), "{label}: result count");
    for (i, (b, s)) in batch.iter().zip(sequential).enumerate() {
        match (b, s) {
            (Ok(bk), Ok(sk)) => {
                assert_eq!(bk.ops, sk.ops, "{label}[{i}]: op sequences differ");
                assert_eq!(bk.schedule, sk.schedule, "{label}[{i}]: schedules differ");
                assert_eq!(bk.alloc, sk.alloc, "{label}[{i}]: AllocStats differ");
                assert_eq!(
                    bk.code_size(),
                    sk.code_size(),
                    "{label}[{i}]: code size differs"
                );
            }
            (Err(be), Err(se)) => {
                assert_eq!(be, se, "{label}[{i}]: errors differ");
            }
            _ => panic!("{label}[{i}]: batch and sequential disagree on success"),
        }
    }
}

/// Every kernel × model pair, compiled concurrently from one shared
/// `&Target`, equals the sequential compile bit for bit.
#[test]
fn batch_output_is_identical_to_sequential_on_every_model() {
    let mut checked_pairs = 0usize;
    for model in models::models() {
        let target = Record::retarget(model.hdl, &RetargetOptions::default())
            .unwrap_or_else(|e| panic!("{} failed to retarget: {e}", model.name));
        if target.data_memory().is_err() {
            continue; // no data memory: every compile fails identically
        }
        let requests: Vec<CompileRequest<'_>> = kernels::kernels()
            .iter()
            .map(|k| CompileRequest::new(k.source, k.function))
            .collect();

        let sequential: Vec<_> = requests.iter().map(|r| target.compile(r)).collect();
        let batch = target.compile_batch(&requests);
        assert_identical(&batch, &sequential, model.name);
        checked_pairs += batch.len();
    }
    assert!(checked_pairs >= 50, "checked {checked_pairs} pairs");
}

/// The equality holds under every option combination, including the ones
/// that exercise the allocator and the compactor differently, and the
/// compiled batch output still matches the mini-C interpreter.
#[test]
fn batch_equals_sequential_under_all_option_sets_on_c25() {
    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();
    let mut requests: Vec<CompileRequest<'_>> = Vec::new();
    for k in kernels::kernels() {
        requests.push(CompileRequest::new(k.source, k.function));
        requests.push(CompileRequest::new(k.source, k.function).compaction(false));
        requests.push(
            CompileRequest::new(k.source, k.function)
                .compaction(false)
                .allocate_registers(false),
        );
        requests.push(
            CompileRequest::new(k.source, k.function)
                .baseline(true)
                .compaction(false),
        );
    }
    let sequential: Vec<_> = requests.iter().map(|r| target.compile(r)).collect();
    let batch = target.compile_batch(&requests);
    assert_identical(&batch, &sequential, "c25/options");

    // The parallel-compiled kernels are not just self-consistent — they
    // compute what the interpreter computes.
    for (req, result) in requests.iter().zip(&batch) {
        let kernel = result.as_ref().expect("all C25 kernels compile");
        common::assert_matches_interpreter(
            &target,
            kernel,
            req.source(),
            req.function(),
            &format!("batch {}", req.function()),
        );
    }
}

/// Stress the session isolation: many copies of the same requests racing
/// over one artifact, several batch rounds in a row, never diverging.
#[test]
fn repeated_batches_are_stable() {
    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();
    // Duplicate the kernel set so the worker pool has to interleave
    // identical requests — any cross-session leakage would show up as a
    // divergence between duplicates.
    let requests: Vec<CompileRequest<'_>> = kernels::kernels()
        .iter()
        .chain(kernels::kernels().iter())
        .chain(kernels::kernels().iter())
        .map(|k| CompileRequest::new(k.source, k.function))
        .collect();
    let first = target.compile_batch(&requests);
    for round in 0..3 {
        let again = target.compile_batch(&requests);
        assert_identical(&again, &first, &format!("round {round}"));
    }
    // Duplicates within one batch are identical to each other too.
    let n = kernels::kernels().len();
    for i in 0..n {
        let a = first[i].as_ref().unwrap();
        let b = first[i + n].as_ref().unwrap();
        let c = first[i + 2 * n].as_ref().unwrap();
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.ops, c.ops);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.alloc, c.alloc);
    }
}
