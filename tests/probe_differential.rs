//! Observability differential: tracing must be *observation only*.
//! Compiling with a collector installed has to produce byte-identical
//! code to compiling with no sink, for every kernel × model pair — and
//! the traces themselves must be well-formed (balanced spans, monotonic
//! timestamps) and export as loadable Chrome trace JSON.

use record_core::{
    validate_chrome_json_shape, CompileRequest, CompiledKernel, MetricsBuilder, Record,
    RetargetOptions,
};
use record_targets::{kernels, models};

fn assert_same_code(traced: &CompiledKernel, plain: &CompiledKernel, label: &str) {
    assert_eq!(traced.ops, plain.ops, "{label}: op sequences differ");
    assert_eq!(traced.schedule, plain.schedule, "{label}: schedules differ");
    assert_eq!(traced.alloc, plain.alloc, "{label}: AllocStats differ");
    let traced_binding: Vec<_> = traced.binding.assignments().collect();
    let plain_binding: Vec<_> = plain.binding.assignments().collect();
    assert_eq!(traced_binding, plain_binding, "{label}: bindings differ");
}

/// An installed collector changes nothing about the generated code: for
/// every kernel × model pair, a traced session compile equals the
/// untraced one-shot compile bit for bit, and errors classify
/// identically.
#[test]
fn traced_compile_is_byte_identical_to_untraced() {
    let mut checked = 0usize;
    for model in models::models() {
        let target = Record::retarget(model.hdl, &RetargetOptions::default())
            .unwrap_or_else(|e| panic!("{} failed to retarget: {e}", model.name));
        for kernel in kernels::kernels() {
            let label = format!("{}/{}", model.name, kernel.name);
            let request = CompileRequest::new(kernel.source, kernel.function);
            let plain = target.compile(&request);
            let mut session = target.session();
            session.install_collector(7);
            let traced = session.compile(&request);
            let trace = session.take_trace().expect("collector was installed");
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{label}: trace invalid: {e}"));
            match (&traced, &plain) {
                (Ok(t), Ok(p)) => {
                    assert_same_code(t, p, &label);
                    assert!(
                        trace.event_count() > 0,
                        "{label}: successful compile recorded no events"
                    );
                }
                (Err(t), Err(p)) => {
                    assert_eq!(t, p, "{label}: errors differ");
                    assert_eq!(
                        t.classify(),
                        p.classify(),
                        "{label}: failure classes differ"
                    );
                }
                _ => panic!("{label}: traced and untraced disagree on success"),
            }
            checked += 1;
        }
    }
    assert!(checked >= 50, "checked {checked} pairs");
}

/// A traced batch equals the untraced batch result for result, and the
/// merged trace has one well-formed lane per request, exporting as
/// structurally valid Chrome trace JSON.
#[test]
fn batch_traced_equals_untraced_batch() {
    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();
    let requests: Vec<CompileRequest<'_>> = kernels::kernels()
        .iter()
        .map(|k| CompileRequest::new(k.source, k.function))
        .collect();

    let plain = target.compile_batch(&requests);
    let (traced, trace) = target.compile_batch_traced(&requests);

    assert_eq!(traced.len(), plain.len());
    for (i, (t, p)) in traced.iter().zip(&plain).enumerate() {
        match (t, p) {
            (Ok(t), Ok(p)) => assert_same_code(t, p, &format!("request {i}")),
            (Err(t), Err(p)) => assert_eq!(t, p, "request {i}: errors differ"),
            _ => panic!("request {i}: traced and untraced batch disagree"),
        }
    }

    trace.validate().expect("merged batch trace is well-formed");
    assert_eq!(
        trace.lanes.len(),
        requests.len(),
        "one lane per batch request"
    );
    let mut lane_ids: Vec<u32> = trace.lanes.iter().map(|l| l.id).collect();
    lane_ids.sort_unstable();
    assert_eq!(
        lane_ids,
        (0..requests.len() as u32).collect::<Vec<_>>(),
        "lane ids are the request indices"
    );

    let json = trace.to_chrome_json("batch");
    validate_chrome_json_shape(&json).expect("chrome JSON shape");
}

/// Fleet metrics are observation-only too: a compile whose report is
/// recorded into a metrics registry (the serving layer's per-phase
/// histograms, with a collector installed like the flight recorder
/// installs one) produces byte-identical code to a bare compile — and
/// the registry afterwards holds exactly the observations the reports
/// claimed.
#[test]
fn metered_compile_is_byte_identical_to_unmetered() {
    let mut b = MetricsBuilder::new();
    let phase_ids: Vec<_> = [
        "parse", "lower", "bind", "select", "emit", "allocate", "compact",
    ]
    .iter()
    .map(|&phase| {
        (
            phase,
            b.histogram("compile_phase_ns", "per-phase latency", &[("phase", phase)]),
        )
    })
    .collect();
    let registry = b.build();
    let shard = registry.shard();

    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();
    let mut expected_observations = 0u64;
    let mut checked = 0usize;
    for kernel in kernels::kernels() {
        let label = format!("tms320c25/{}", kernel.name);
        let request = CompileRequest::new(kernel.source, kernel.function);
        let plain = target.compile(&request);
        // The metered path mirrors the serving layer: collector armed,
        // report phases recorded onto a lock-free shard afterwards.
        let mut session = target.session();
        session.install_collector(0);
        let metered = session.compile(&request);
        if let Ok(kernel) = &metered {
            for p in &kernel.report.phases {
                if let Some(&(_, id)) = phase_ids.iter().find(|(l, _)| *l == p.label) {
                    shard.observe(id, p.ns);
                    expected_observations += 1;
                }
            }
        }
        match (&metered, &plain) {
            (Ok(m), Ok(p)) => assert_same_code(m, p, &label),
            (Err(m), Err(p)) => assert_eq!(m, p, "{label}: errors differ"),
            _ => panic!("{label}: metered and unmetered disagree on success"),
        }
        checked += 1;
    }
    assert!(checked >= 10, "checked {checked} kernels");

    // The registry saw every recorded phase, no more, no less.
    let total: u64 = phase_ids
        .iter()
        .map(|&(_, id)| registry.histogram(id).count())
        .sum();
    assert_eq!(total, expected_observations, "registry observation count");
    assert!(total > 0, "no phase observations recorded");
}

/// The always-on report tells the truth: phases cover the pipeline that
/// actually ran, and the counters match observable output properties.
#[test]
fn compile_reports_are_attached_and_consistent() {
    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();

    let retarget_report = &target.report().report;
    for phase in [
        "parse",
        "extract",
        "template-gen",
        "rule-gen",
        "selector-gen",
        "freeze",
    ] {
        assert!(
            retarget_report.phase_ns(phase).is_some(),
            "retarget report misses phase `{phase}`"
        );
    }
    assert_eq!(
        retarget_report.counter("rule-gen.rules"),
        Some(target.report().rules as u64)
    );
    assert!(target.report().t_total() >= target.report().t_extract());

    let all_kernels = kernels::kernels();
    let kernel = all_kernels
        .iter()
        .find(|k| k.name == "fir")
        .expect("fir kernel exists");
    let compiled = target
        .compile(&CompileRequest::new(kernel.source, kernel.function))
        .expect("fir compiles on c25");
    for phase in [
        "parse", "lower", "bind", "select", "emit", "allocate", "compact",
    ] {
        assert!(
            compiled.report.phase_ns(phase).is_some(),
            "compile report misses phase `{phase}`"
        );
    }
    assert!(
        compiled.report.counter("emit.statements").unwrap_or(0) > 0,
        "no statements counted"
    );
    assert!(
        compiled.report.counter("select.rules-tried").unwrap_or(0) > 0,
        "no selector work counted"
    );
    // BDD counter deltas are session-scoped and must reflect real work.
    assert!(
        compiled.report.counter("bdd.unique-lookups").unwrap_or(0) > 0,
        "no BDD work counted"
    );
}
