//! Shared oracle helpers for the integration tests: deterministic input
//! data and the interpreter-vs-machine comparison used to validate every
//! code-transforming phase.

use record_core::{CompiledKernel, Target};
use std::collections::BTreeSet;

/// Deterministic non-trivial input data for a program's globals.
#[allow(dead_code)]
pub fn init_data(program: &record_ir::Program) -> Vec<(String, Vec<u64>)> {
    program
        .globals
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let vals = (0..g.words())
                .map(|i| (gi as u64 * 37 + i * 11 + 3) & 0xFF)
                .collect();
            (g.name.clone(), vals)
        })
        .collect()
}

/// Variables the flattened program actually touches (loop variables fold
/// away during unrolling and never reach machine memory).
#[allow(dead_code)]
pub fn touched_variables(flat: &[record_ir::FlatStmt]) -> BTreeSet<String> {
    fn collect(e: &record_ir::FlatExpr, out: &mut BTreeSet<String>) {
        match e {
            record_ir::FlatExpr::Load(r) => {
                out.insert(r.name.clone());
            }
            record_ir::FlatExpr::Unary(_, a) => collect(a, out),
            record_ir::FlatExpr::Binary(_, a, b) => {
                collect(a, out);
                collect(b, out);
            }
            record_ir::FlatExpr::Const(_) => {}
        }
    }
    let mut set = BTreeSet::new();
    for st in flat {
        set.insert(st.target.name.clone());
        collect(&st.value, &mut set);
    }
    set
}

/// Variables a lowered CFG touches, including branch-condition reads
/// (the CFG counterpart of [`touched_variables`]).
#[allow(dead_code)]
pub fn touched_variables_cfg(cfg: &record_ir::Cfg) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for b in &cfg.blocks {
        set.extend(touched_variables(&b.stmts));
        if let record_ir::Terminator::Branch { cond, .. } = &b.term {
            fn collect(e: &record_ir::FlatExpr, out: &mut BTreeSet<String>) {
                match e {
                    record_ir::FlatExpr::Load(r) => {
                        out.insert(r.name.clone());
                    }
                    record_ir::FlatExpr::Unary(_, a) => collect(a, out),
                    record_ir::FlatExpr::Binary(_, a, b) => {
                        collect(a, out);
                        collect(b, out);
                    }
                    record_ir::FlatExpr::Const(_) => {}
                }
            }
            collect(cond, &mut set);
        }
    }
    set
}

/// CFG-aware interpreter-vs-machine oracle: like
/// [`assert_matches_interpreter`], but lowers to a CFG so programs with
/// data-dependent control flow can be checked, and takes the initial
/// memory image explicitly (control-flow kernels are sensitive to input
/// data, so tests drive them with several images).
#[allow(dead_code)]
pub fn assert_matches_interpreter_cfg(
    target: &Target,
    kernel: &CompiledKernel,
    source: &str,
    function: &str,
    init: &[(String, Vec<u64>)],
    label: &str,
) {
    let program = record_ir::parse(source).unwrap();
    let cfg = record_ir::lower_cfg(&program, function).unwrap();

    let mut mem = record_ir::Memory::new();
    for (name, vals) in init {
        mem.insert(name.clone(), vals.clone());
    }
    record_ir::interp(&program, function, &mut mem, 16).unwrap();

    let init_refs: Vec<(&str, Vec<u64>)> =
        init.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    let machine = target.execute(kernel, &init_refs);
    let dm = target.data_memory().expect("data memory");
    let touched = touched_variables_cfg(&cfg);
    for (name, addr) in kernel.binding.assignments() {
        if !touched.contains(name) {
            continue;
        }
        for (i, want) in mem[name].iter().enumerate() {
            assert_eq!(
                machine.mem(dm, addr + i as u64),
                *want,
                "{label}: machine disagrees with the interpreter at {name}[{i}]"
            );
        }
    }
}

/// Runs `kernel` on the machine simulator from [`init_data`] inputs and
/// asserts every touched variable equals what the mini-C interpreter
/// computes; `label` names the kernel/model pair in failure messages.
#[allow(dead_code)]
pub fn assert_matches_interpreter(
    target: &Target,
    kernel: &CompiledKernel,
    source: &str,
    function: &str,
    label: &str,
) {
    let program = record_ir::parse(source).unwrap();
    let flat = record_ir::lower(&program, function).unwrap();
    let init = init_data(&program);

    let mut mem = record_ir::Memory::new();
    for (name, vals) in &init {
        mem.insert(name.clone(), vals.clone());
    }
    record_ir::interp(&program, function, &mut mem, 16).unwrap();

    let init_refs: Vec<(&str, Vec<u64>)> =
        init.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    let machine = target.execute(kernel, &init_refs);
    let dm = target.data_memory().expect("data memory");
    let touched = touched_variables(&flat);
    for (name, addr) in kernel.binding.assignments() {
        if !touched.contains(name) {
            continue;
        }
        for (i, want) in mem[name].iter().enumerate() {
            assert_eq!(
                machine.mem(dm, addr + i as u64),
                *want,
                "{label}: machine disagrees with the interpreter at {name}[{i}]"
            );
        }
    }
}
