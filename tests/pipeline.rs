//! End-to-end integration tests: every Table 3 target retargets, every
//! Figure 2 kernel compiles on the C25-like model, and compiled code
//! computes exactly what the mini-C interpreter computes.

mod common;

use record_core::{CompileRequest, Record, RetargetOptions};
use record_targets::{kernels, models};

#[test]
fn all_six_models_retarget() {
    for m in models::models() {
        let target = Record::retarget(m.hdl, &RetargetOptions::default())
            .unwrap_or_else(|e| panic!("{} failed to retarget: {e}", m.name));
        let s = target.report();
        assert!(s.templates_extended > 0, "{}: empty template base", m.name);
        assert!(s.rules > s.templates_extended, "{}: missing rules", m.name);
        // The grammar must be well-formed for each machine.
        let findings = target.grammar().check();
        assert!(findings.is_empty(), "{}: {:?}", m.name, findings);
    }
}

#[test]
fn template_count_ordering_matches_paper() {
    // Paper Table 3: ref (1703) > demo (439) > TMS320C25 (356) >
    // tanenbaum (232) ~ manocpu (207) > bass_boost (89).  Absolute counts
    // differ (see EXPERIMENTS.md) but the ordering must hold for the big
    // three and bass_boost must stay smallest.
    let count = |name: &str| {
        let m = models::model(name).unwrap();
        Record::retarget(m.hdl, &RetargetOptions::default())
            .unwrap()
            .report()
            .templates_extended
    };
    let reference = count("ref");
    let demo = count("demo");
    let c25 = count("tms320c25");
    let bass = count("bass_boost");
    assert!(reference > demo, "ref {reference} <= demo {demo}");
    assert!(demo > c25, "demo {demo} <= c25 {c25}");
    assert!(c25 > bass, "c25 {c25} <= bass {bass}");
}

#[test]
fn all_kernels_compile_on_c25() {
    let m = models::model("tms320c25").unwrap();
    let target = Record::retarget(m.hdl, &RetargetOptions::default()).unwrap();
    for k in kernels::kernels() {
        let compiled = target
            .compile(&CompileRequest::new(k.source, k.function))
            .unwrap_or_else(|e| panic!("{} failed: {e}", k.name));
        assert!(compiled.code_size() > 0);
        // Record code should stay within 2x of hand-written (paper: low
        // overhead), and never beat hand code (it is a lower bound).
        assert!(
            compiled.code_size() >= k.hand_ops,
            "{}: {} words beats hand {}",
            k.name,
            compiled.code_size(),
            k.hand_ops
        );
        assert!(
            compiled.code_size() <= 2 * k.hand_ops,
            "{}: {} words exceeds 2x hand {}",
            k.name,
            compiled.code_size(),
            k.hand_ops
        );
    }
}

#[test]
fn baseline_is_never_better_than_record() {
    let m = models::model("tms320c25").unwrap();
    let target = Record::retarget(m.hdl, &RetargetOptions::default()).unwrap();
    for k in kernels::kernels() {
        let rec = target
            .compile(&CompileRequest::new(k.source, k.function))
            .unwrap();
        let base = target
            .compile(
                &CompileRequest::new(k.source, k.function)
                    .baseline(true)
                    .compaction(false),
            )
            .unwrap();
        assert!(
            base.code_size() >= rec.code_size(),
            "{}: baseline {} < record {}",
            k.name,
            base.code_size(),
            rec.code_size()
        );
    }
}

/// The strongest oracle in the repo: for every kernel, run the compiled RT
/// code on the machine simulator and compare every touched variable with
/// the mini-C interpreter.
#[test]
fn compiled_kernels_compute_correct_results() {
    let m = models::model("tms320c25").unwrap();
    let target = Record::retarget(m.hdl, &RetargetOptions::default()).unwrap();
    for k in kernels::kernels() {
        let compiled = target
            .compile(&CompileRequest::new(k.source, k.function))
            .unwrap();
        common::assert_matches_interpreter(&target, &compiled, k.source, k.function, k.name);
    }
}

#[test]
fn compaction_packs_on_horizontal_machine() {
    let m = models::model("demo").unwrap();
    let target = Record::retarget(m.hdl, &RetargetOptions::default()).unwrap();
    // Both subtrees of the subtraction evaluate the same expression into
    // different registers; on the horizontal format the two identical ALU
    // operations pack into a single word (only the enable bits differ).
    let src = "int a, x; void f() { x = (a + a) - (a + a); }";
    let with = target.compile(&CompileRequest::new(src, "f")).unwrap();
    let without = target
        .compile(&CompileRequest::new(src, "f").compaction(false))
        .unwrap();
    assert!(
        with.code_size() < without.code_size(),
        "compaction did not pack: {} vs {}",
        with.code_size(),
        without.code_size()
    );
}

#[test]
fn parser_source_emission_is_deterministic() {
    let m = models::model("bass_boost").unwrap();
    let options = RetargetOptions {
        emit_parser_source: true,
        ..Default::default()
    };
    let t1 = Record::retarget(m.hdl, &options).unwrap();
    let t2 = Record::retarget(m.hdl, &options).unwrap();
    let s1 = t1.parser_source().expect("source emitted");
    assert_eq!(Some(s1), t2.parser_source());
    assert!(s1.contains("pub fn match_rule"));
}

#[test]
fn retargeting_without_extension_shrinks_base() {
    let m = models::model("tms320c25").unwrap();
    let bare = RetargetOptions {
        extension: record_rtl::ExtensionOptions::none(),
        ..Default::default()
    };
    let without = Record::retarget(m.hdl, &bare).unwrap();
    let with = Record::retarget(m.hdl, &RetargetOptions::default()).unwrap();
    assert!(with.report().templates_extended > without.report().templates_extended);
    assert_eq!(
        without.report().templates_extended,
        without.report().templates_extracted
    );
}

#[test]
fn commutativity_ablation_affects_code_size() {
    // Without commutative variants, a kernel whose source tree puts the
    // product on the left still compiles (the DP may restructure through
    // registers) but never *better* than with them.
    let m = models::model("tms320c25").unwrap();
    let src = "int d, a, b, c; void f() { d = a * b + c; }";
    let with = Record::retarget(m.hdl, &RetargetOptions::default()).unwrap();
    let bare = RetargetOptions {
        extension: record_rtl::ExtensionOptions::none(),
        ..Default::default()
    };
    let without = Record::retarget(m.hdl, &bare).unwrap();
    let sw = with
        .compile(&CompileRequest::new(src, "f"))
        .unwrap()
        .code_size();
    // A selection error is acceptable: the shape may not be covered at
    // all without commutative variants.
    if let Ok(k) = without.compile(&CompileRequest::new(src, "f")) {
        assert!(k.code_size() >= sw);
    }
}
