//! Differential validation of the register allocator: on every kernel ×
//! model pair that compiles, allocated code must compute exactly what the
//! mini-C interpreter computes, and must never make more data-memory
//! accesses than the unallocated code.

mod common;

use record_core::{mem_traffic, CompileRequest, CompiledKernel, Record, RetargetOptions, Target};
use record_targets::{kernels, models};

fn req<'a>(source: &'a str, function: &'a str, allocate: bool) -> CompileRequest<'a> {
    CompileRequest::new(source, function)
        .compaction(false)
        .allocate_registers(allocate)
}

fn accesses(target: &Target, kernel: &CompiledKernel) -> usize {
    let dm = target.data_memory().expect("data memory");
    let (r, w) = mem_traffic(&kernel.ops, dm);
    r + w
}

#[test]
fn allocated_code_is_correct_and_never_noisier_on_every_model() {
    let mut compiled_on_c25 = 0;
    for model in models::models() {
        let target = Record::retarget(model.hdl, &RetargetOptions::default())
            .unwrap_or_else(|e| panic!("{} failed to retarget: {e}", model.name));
        if target.data_memory().is_err() {
            continue; // no data memory: nothing to compile against
        }

        for k in kernels::kernels() {
            // Some machines legitimately lack operators a kernel needs
            // (e.g. no multiplier): skip those pairs, but never on the C25.
            let Ok(unalloc) = target.compile(&req(k.source, k.function, false)) else {
                assert_ne!(
                    model.name, "tms320c25",
                    "{}: kernel {} must compile on the C25",
                    model.name, k.name
                );
                continue;
            };
            let alloc = target
                .compile(&req(k.source, k.function, true))
                .unwrap_or_else(|e| {
                    panic!(
                        "{}/{}: allocation broke compilation: {e}",
                        model.name, k.name
                    )
                });
            if model.name == "tms320c25" {
                compiled_on_c25 += 1;
            }

            // 1. Traffic: allocated ≤ unallocated, and the counters agree
            //    with what the stats claim.
            let before = accesses(&target, &unalloc);
            let after = accesses(&target, &alloc);
            assert!(
                after <= before,
                "{}/{}: allocation increased memory traffic {before} -> {after}",
                model.name,
                k.name
            );
            let stats = alloc.alloc.as_ref().expect("allocator ran");
            assert_eq!(stats.accesses_after(), after, "{}/{}", model.name, k.name);
            assert_eq!(stats.accesses_before(), before, "{}/{}", model.name, k.name);
            assert!(alloc.ops.len() <= unalloc.ops.len());

            // 2. Correctness: allocated code agrees with the interpreter
            //    on every touched variable.
            common::assert_matches_interpreter(
                &target,
                &alloc,
                k.source,
                k.function,
                &format!("{}/{} (allocated)", model.name, k.name),
            );
        }
    }
    assert_eq!(compiled_on_c25, 10, "all Figure 2 kernels ran on the C25");
}

/// On the C25, the accumulator kernels round-trip their running sum
/// through memory once per MAC — the allocator must remove all of it.
#[test]
fn c25_accumulator_kernels_get_strictly_faster() {
    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();
    for name in ["fir", "dot_product", "convolution"] {
        let k = kernels::kernel(name).unwrap();
        let unalloc = target.compile(&req(k.source, k.function, false)).unwrap();
        let alloc = target.compile(&req(k.source, k.function, true)).unwrap();
        assert!(
            accesses(&target, &alloc) < accesses(&target, &unalloc),
            "{name}: expected a strict memory-traffic reduction"
        );
        let stats = alloc.alloc.as_ref().unwrap();
        assert!(stats.reloads_eliminated > 0, "{name}: reloads survive");
        assert!(stats.stores_eliminated > 0, "{name}: dead stores survive");
    }
}

/// Against the memory-bound baseline (the paper's Figure 2 comparator),
/// allocated RECORD code makes strictly fewer data-memory accesses on
/// every kernel.
#[test]
fn c25_allocated_beats_baseline_traffic_on_every_kernel() {
    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();
    for k in kernels::kernels() {
        let alloc = target.compile(&req(k.source, k.function, true)).unwrap();
        let base = target
            .compile(
                // allocate_registers is ignored on the baseline path.
                &req(k.source, k.function, true).baseline(true),
            )
            .unwrap();
        assert!(
            base.alloc.is_none(),
            "{}: the baseline path must stay memory-bound",
            k.name
        );
        assert!(
            accesses(&target, &alloc) < accesses(&target, &base),
            "{}: allocated {} accesses vs baseline {}",
            k.name,
            accesses(&target, &alloc),
            accesses(&target, &base)
        );
    }
}

/// Allocation composes with compaction: same results, no longer code.
#[test]
fn c25_allocation_composes_with_compaction() {
    let model = models::model("tms320c25").unwrap();
    let target = Record::retarget(model.hdl, &RetargetOptions::default()).unwrap();
    for k in kernels::kernels() {
        let full = target
            .compile(&CompileRequest::new(k.source, k.function))
            .unwrap();
        let unalloc = target
            .compile(&CompileRequest::new(k.source, k.function).allocate_registers(false))
            .unwrap();
        assert!(
            full.code_size() <= unalloc.code_size(),
            "{}: allocation lengthened compacted code",
            k.name
        );
        common::assert_matches_interpreter(
            &target,
            &full,
            k.source,
            k.function,
            &format!("{} (allocated+compacted)", k.name),
        );
    }
}
