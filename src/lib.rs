//! `record` — meta-crate re-exporting the retargetable-compiler pipeline.
//!
//! See the [`record_core`] documentation for the pipeline API, and the
//! workspace `README.md` for an overview.  The `examples/` directory of
//! this package contains runnable end-to-end walk-throughs.

pub use record_core::{
    CompileError, CompileOptions, CompilePhase, CompileReport, CompileRequest, CompileSession,
    CompiledKernel, Diagnostic, FailureClass, PipelineError, Record, RetargetOptions,
    RetargetReport, SessionPages, Target,
};
pub use record_targets as targets;
